#include "repair/lrepair.h"

#include <string>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace fixrep {

namespace {

void InitScratch(size_t num_rules, std::vector<uint32_t>* counter,
                 std::vector<uint32_t>* counter_epoch,
                 std::vector<uint32_t>* queued_epoch,
                 std::vector<uint32_t>* checked_epoch) {
  counter->assign(num_rules, 0);
  counter_epoch->assign(num_rules, 0);
  queued_epoch->assign(num_rules, 0);
  checked_epoch->assign(num_rules, 0);
}

}  // namespace

FastRepairer::FastRepairer(const RuleSet* rules)
    : owned_index_(std::make_unique<CompiledRuleIndex>(rules)),
      index_(owned_index_.get()) {
  InitScratch(index_->num_rules(), &counter_, &counter_epoch_,
              &queued_epoch_, &checked_epoch_);
  stats_.Reset(index_->num_rules());
  published_.Reset(index_->num_rules());
}

FastRepairer::FastRepairer(const CompiledRuleIndex* index) : index_(index) {
  FIXREP_CHECK(index_ != nullptr);
  InitScratch(index_->num_rules(), &counter_, &counter_epoch_,
              &queued_epoch_, &checked_epoch_);
  stats_.Reset(index_->num_rules());
  published_.Reset(index_->num_rules());
}

void FastRepairer::BumpCounter(uint32_t rule_index) {
  ++stats_.counter_bumps;
  if (counter_epoch_[rule_index] != epoch_) {
    counter_epoch_[rule_index] = epoch_;
    counter_[rule_index] = 0;
  }
  ++counter_[rule_index];
  if (counter_[rule_index] == index_->evidence_count(rule_index) &&
      queued_epoch_[rule_index] != epoch_ &&
      checked_epoch_[rule_index] != epoch_) {
    queued_epoch_[rule_index] = epoch_;
    ++stats_.candidates_enqueued;
    queue_.push_back(rule_index);
  }
}

size_t FastRepairer::RepairTuple(TupleSpan t) {
  FIXREP_CHECK_EQ(t.size(), index_->arity());
  if (memo_ == nullptr) return ChaseTuple(t);

  const uint64_t hash = MemoCache::HashTuple(t);
  if (const std::vector<MemoCache::Write>* writes = memo_->Find(hash, t)) {
    // Replay: identical tuple, identical fix. The outcome counters
    // (tuples/cells/rule applications) advance exactly as a chase would;
    // the chase-internal ones (counter bumps, Ω traffic) are skipped —
    // that skipped work is the win.
    ++stats_.tuples_examined;
    for (const MemoCache::Write& write : *writes) {
      t[write.attr] = write.value;
      ++stats_.rule_applications;
      ++stats_.per_rule_applications[write.rule];
    }
    stats_.cells_changed += writes->size();
    if (!writes->empty()) ++stats_.tuples_changed;
    return writes->size();
  }

  Tuple key = t.ToTuple();  // pre-repair signature; the chase mutates t
  writes_scratch_.clear();
  const size_t changed = ChaseTuple(t);
  memo_->Insert(hash, std::move(key), writes_scratch_);
  return changed;
}

Status FastRepairer::TryRepairTuple(TupleSpan t, size_t* cells_changed) {
  *cells_changed = 0;
  if (t.size() != index_->arity()) {
    ++stats_.tuples_examined;  // every attempt counts, even a failed one
    return Status::MalformedInput(
        "tuple arity " + std::to_string(t.size()) +
        " does not match schema arity " + std::to_string(index_->arity()));
  }
  if (FIXREP_FAULT("repair.tuple")) {
    ++stats_.tuples_examined;
    return Status::Internal("injected repair-worker fault");
  }
  if (max_chase_steps_ == 0) {
    *cells_changed = ChaseTuple(t);
    return Status::Ok();
  }
  const Tuple original = t.ToTuple();
  writes_scratch_.clear();
  bool exhausted = false;
  *cells_changed = ChaseTuple(t, max_chase_steps_, &exhausted);
  if (exhausted) {
    t.CopyFrom(original);
    *cells_changed = 0;
    return Status::BudgetExhausted(
        "chase exceeded its budget of " +
        std::to_string(max_chase_steps_) + " candidate applications");
  }
  return Status::Ok();
}

size_t FastRepairer::ChaseTuple(TupleSpan t, size_t max_steps,
                                bool* exhausted) {
  ++stats_.tuples_examined;
  ++epoch_;
  if (epoch_ == 0) {
    // uint32 wrap-around after ~4B tuples: hard-reset the stamps.
    counter_epoch_.assign(counter_epoch_.size(), 0);
    queued_epoch_.assign(queued_epoch_.size(), 0);
    checked_epoch_.assign(checked_epoch_.size(), 0);
    epoch_ = 1;
  }
  queue_.clear();

  // Lines 2-7 of Fig. 7: initialize counters from the tuple's cells and
  // seed Ω with fully-counted rules.
  for (uint32_t rule_index : index_->empty_evidence_rules()) {
    queued_epoch_[rule_index] = epoch_;
    ++stats_.candidates_enqueued;
    queue_.push_back(rule_index);
  }
  const auto arity = static_cast<AttrId>(t.size());
  for (AttrId a = 0; a < arity; ++a) {
    const ValueId v = t[a];
    if (v == kNullValue) continue;
    const PostingRange range = index_->Lookup(a, v);
    if (range.empty()) continue;
    ++stats_.index_hits;
    for (const uint32_t* p = range.begin; p != range.end; ++p) {
      BumpCounter(*p);
    }
  }

  // Lines 8-16: chase over the candidate set.
  const bool log_writes = memo_ != nullptr || max_steps > 0;
  AttrSet assured;
  size_t steps = 0;
  size_t cells_changed = 0;
  while (!queue_.empty()) {
    const uint32_t rule_index = queue_.back();
    queue_.pop_back();
    if (checked_epoch_[rule_index] == epoch_) continue;
    if (max_steps > 0 && ++steps > max_steps) {
      // Budget blown: roll the rule-application stats back (cells/tuple
      // outcomes were never committed); the caller restores the tuple.
      for (const MemoCache::Write& write : writes_scratch_) {
        --stats_.rule_applications;
        --stats_.per_rule_applications[write.rule];
      }
      *exhausted = true;
      return 0;
    }
    checked_epoch_[rule_index] = epoch_;  // removed from Ω once and for all
    const AttrId target = index_->target(rule_index);
    if (assured.Contains(target) ||
        !index_->rules().rule(rule_index).Matches(t)) {
      ++stats_.candidates_rejected;
      continue;
    }
    const ValueId fact = index_->fact(rule_index);
    t[target] = fact;
    assured.UnionWith(index_->assured(rule_index));
    ++cells_changed;
    ++stats_.rule_applications;
    ++stats_.per_rule_applications[rule_index];
    if (log_writes) {
      writes_scratch_.push_back({target, fact, rule_index});
    }
    // Propagate the new value through the inverted lists (lines 13-15).
    const PostingRange range = index_->Lookup(target, fact);
    if (range.empty()) continue;
    ++stats_.index_hits;
    for (const uint32_t* p = range.begin; p != range.end; ++p) {
      if (checked_epoch_[*p] != epoch_) BumpCounter(*p);
    }
  }

  stats_.cells_changed += cells_changed;
  if (cells_changed > 0) ++stats_.tuples_changed;
  return cells_changed;
}

void FastRepairer::RepairTable(Table* table) {
  FIXREP_TRACE_SPAN("lrepair.chase");
  for (size_t r = 0; r < table->num_rows(); ++r) {
    RepairTuple(table->WriteRow(r));
  }
  FlushMetrics();
}

void FastRepairer::FlushMetrics() {
  stats_.PublishDelta(published_, "lrepair");
  published_ = stats_;
  if (memo_ != nullptr) memo_->FlushMetrics();
}

}  // namespace fixrep
