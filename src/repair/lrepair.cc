#include "repair/lrepair.h"

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace fixrep {

FastRepairer::FastRepairer(const RuleSet* rules) : rules_(rules) {
  FIXREP_CHECK(rules_ != nullptr);
  FIXREP_TRACE_SPAN("lrepair.index_build");
  const size_t n = rules_->size();
  for (uint32_t i = 0; i < n; ++i) {
    const FixingRule& rule = rules_->rule(i);
    if (rule.evidence_attrs.empty()) {
      empty_evidence_rules_.push_back(i);
      continue;
    }
    for (size_t e = 0; e < rule.evidence_attrs.size(); ++e) {
      inverted_[Key(rule.evidence_attrs[e], rule.evidence_values[e])]
          .push_back(i);
    }
  }
  counter_.assign(n, 0);
  counter_epoch_.assign(n, 0);
  queued_epoch_.assign(n, 0);
  checked_epoch_.assign(n, 0);
  stats_.Reset(n);
  published_.Reset(n);
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("fixrep.lrepair.index_builds")->Add(1);
  registry.GetGauge("fixrep.lrepair.index_keys")
      ->Set(static_cast<int64_t>(inverted_.size()));
}

void FastRepairer::BumpCounter(uint32_t rule_index) {
  ++stats_.counter_bumps;
  if (counter_epoch_[rule_index] != epoch_) {
    counter_epoch_[rule_index] = epoch_;
    counter_[rule_index] = 0;
  }
  ++counter_[rule_index];
  if (counter_[rule_index] ==
          rules_->rule(rule_index).evidence_attrs.size() &&
      queued_epoch_[rule_index] != epoch_ &&
      checked_epoch_[rule_index] != epoch_) {
    queued_epoch_[rule_index] = epoch_;
    ++stats_.candidates_enqueued;
    queue_.push_back(rule_index);
  }
}

size_t FastRepairer::RepairTuple(Tuple* t) {
  FIXREP_CHECK_EQ(t->size(), rules_->schema().arity());
  ++stats_.tuples_examined;
  ++epoch_;
  if (epoch_ == 0) {
    // uint32 wrap-around after ~4B tuples: hard-reset the stamps.
    counter_epoch_.assign(counter_epoch_.size(), 0);
    queued_epoch_.assign(queued_epoch_.size(), 0);
    checked_epoch_.assign(checked_epoch_.size(), 0);
    epoch_ = 1;
  }
  queue_.clear();

  // Lines 2-7 of Fig. 7: initialize counters from the tuple's cells and
  // seed Ω with fully-counted rules.
  for (uint32_t rule_index : empty_evidence_rules_) {
    queued_epoch_[rule_index] = epoch_;
    ++stats_.candidates_enqueued;
    queue_.push_back(rule_index);
  }
  const auto arity = static_cast<AttrId>(t->size());
  for (AttrId a = 0; a < arity; ++a) {
    const ValueId v = (*t)[a];
    if (v == kNullValue) continue;
    const auto it = inverted_.find(Key(a, v));
    if (it == inverted_.end()) continue;
    ++stats_.index_hits;
    for (const uint32_t rule_index : it->second) BumpCounter(rule_index);
  }

  // Lines 8-16: chase over the candidate set.
  AttrSet assured;
  size_t cells_changed = 0;
  while (!queue_.empty()) {
    const uint32_t rule_index = queue_.back();
    queue_.pop_back();
    if (checked_epoch_[rule_index] == epoch_) continue;
    checked_epoch_[rule_index] = epoch_;  // removed from Ω once and for all
    const FixingRule& rule = rules_->rule(rule_index);
    if (assured.Contains(rule.target) || !rule.Matches(*t)) {
      ++stats_.candidates_rejected;
      continue;
    }
    rule.Apply(t);
    assured.UnionWith(rule.AssuredSet());
    ++cells_changed;
    ++stats_.rule_applications;
    ++stats_.per_rule_applications[rule_index];
    // Propagate the new value through the inverted lists (lines 13-15).
    const auto it = inverted_.find(Key(rule.target, rule.fact));
    if (it == inverted_.end()) continue;
    ++stats_.index_hits;
    for (const uint32_t candidate : it->second) {
      if (checked_epoch_[candidate] != epoch_) BumpCounter(candidate);
    }
  }

  stats_.cells_changed += cells_changed;
  if (cells_changed > 0) ++stats_.tuples_changed;
  return cells_changed;
}

void FastRepairer::RepairTable(Table* table) {
  FIXREP_TRACE_SPAN("lrepair.chase");
  for (size_t r = 0; r < table->num_rows(); ++r) {
    RepairTuple(&table->mutable_row(r));
  }
  FlushMetrics();
}

void FastRepairer::FlushMetrics() {
  stats_.PublishDelta(published_, "lrepair");
  published_ = stats_;
}

}  // namespace fixrep
