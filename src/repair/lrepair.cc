#include "repair/lrepair.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/simd.h"
#include "common/trace.h"

namespace fixrep {

namespace {

void InitScratch(size_t num_rules, std::vector<uint32_t>* counter,
                 std::vector<uint32_t>* counter_epoch,
                 std::vector<uint32_t>* queued_epoch,
                 std::vector<uint32_t>* checked_epoch,
                 std::vector<uint64_t>* flag_cache) {
  counter->assign(num_rules, 0);
  counter_epoch->assign(num_rules, 0);
  queued_epoch->assign(num_rules, 0);
  checked_epoch->assign(num_rules, 0);
  flag_cache->assign(num_rules, UINT64_MAX);
}

}  // namespace

FastRepairer::FastRepairer(const RuleSet* rules)
    : owned_index_(std::make_unique<CompiledRuleIndex>(rules)),
      source_(owned_index_->MakeSource()) {
  InitScratch(source_.num_rules(), &counter_, &counter_epoch_,
              &queued_epoch_, &checked_epoch_, &flag_cache_);
  stats_.Reset(source_.num_rules());
  published_.Reset(source_.num_rules());
}

FastRepairer::FastRepairer(const CompiledRuleIndex* index)
    : source_(index->MakeSource()) {
  InitScratch(source_.num_rules(), &counter_, &counter_epoch_,
              &queued_epoch_, &checked_epoch_, &flag_cache_);
  stats_.Reset(source_.num_rules());
  published_.Reset(source_.num_rules());
}

FastRepairer::FastRepairer(const RuleSource& source) : source_(source) {
  InitScratch(source_.num_rules(), &counter_, &counter_epoch_,
              &queued_epoch_, &checked_epoch_, &flag_cache_);
  stats_.Reset(source_.num_rules());
  published_.Reset(source_.num_rules());
}

void FastRepairer::BumpCounter(uint32_t rule_index) {
  ++stats_.counter_bumps;
  if (counter_epoch_[rule_index] != epoch_) {
    counter_epoch_[rule_index] = epoch_;
    counter_[rule_index] = 0;
  }
  ++counter_[rule_index];
  if (counter_[rule_index] == source_.evidence_count(rule_index) &&
      queued_epoch_[rule_index] != epoch_ &&
      checked_epoch_[rule_index] != epoch_) {
    queued_epoch_[rule_index] = epoch_;
    ++stats_.candidates_enqueued;
    queue_.push_back(rule_index);
  }
}

size_t FastRepairer::RepairTuple(TupleSpan t) {
  FIXREP_CHECK_EQ(t.size(), source_.arity());
  if (memo_ == nullptr) return ChaseTuple(t);

  const uint64_t hash = MemoCache::HashTuple(t);
  if (const std::vector<MemoCache::Write>* writes = memo_->Find(hash, t)) {
    // Replay: identical tuple, identical fix. The outcome counters
    // (tuples/cells/rule applications) advance exactly as a chase would;
    // the chase-internal ones (counter bumps, Ω traffic) are skipped —
    // that skipped work is the win.
    ++stats_.tuples_examined;
    for (const MemoCache::Write& write : *writes) {
      if (write_log_ != nullptr) {
        write_log_->push_back({write_log_row_, write.attr, t[write.attr],
                               write.value, write.rule});
      }
      t[write.attr] = write.value;
      ++stats_.rule_applications;
      ++stats_.per_rule_applications[write.rule];
    }
    stats_.cells_changed += writes->size();
    if (!writes->empty()) ++stats_.tuples_changed;
    return writes->size();
  }

  Tuple key = t.ToTuple();  // pre-repair signature; the chase mutates t
  writes_scratch_.clear();
  const size_t changed = ChaseTuple(t);
  memo_->Insert(hash, std::move(key), writes_scratch_);
  return changed;
}

Status FastRepairer::TryRepairTuple(TupleSpan t, size_t* cells_changed) {
  *cells_changed = 0;
  if (t.size() != source_.arity()) {
    ++stats_.tuples_examined;  // every attempt counts, even a failed one
    return Status::MalformedInput(
        "tuple arity " + std::to_string(t.size()) +
        " does not match schema arity " + std::to_string(source_.arity()));
  }
  if (FIXREP_FAULT("repair.tuple")) {
    ++stats_.tuples_examined;
    return Status::Internal("injected repair-worker fault");
  }
  if (max_chase_steps_ == 0) {
    *cells_changed = ChaseTuple(t);
    return Status::Ok();
  }
  const Tuple original = t.ToTuple();
  writes_scratch_.clear();
  bool exhausted = false;
  *cells_changed = ChaseTuple(t, max_chase_steps_, &exhausted);
  if (exhausted) {
    t.CopyFrom(original);
    *cells_changed = 0;
    return Status::BudgetExhausted(
        "chase exceeded its budget of " +
        std::to_string(max_chase_steps_) + " candidate applications");
  }
  return Status::Ok();
}

size_t FastRepairer::ChaseTuple(TupleSpan t, size_t max_steps,
                                bool* exhausted,
                                const PostingRange* init_ranges,
                                size_t num_init_ranges) {
  ++stats_.tuples_examined;
  const size_t log_mark = write_log_ != nullptr ? write_log_->size() : 0;
  ++epoch_;
  if (epoch_ == 0) {
    // uint32 wrap-around after ~4B tuples: hard-reset the stamps.
    counter_epoch_.assign(counter_epoch_.size(), 0);
    queued_epoch_.assign(queued_epoch_.size(), 0);
    checked_epoch_.assign(checked_epoch_.size(), 0);
    epoch_ = 1;
  }
  queue_.clear();

  bool have_ranges = init_ranges != nullptr;
  if (!have_ranges && max_steps == 0) {
    const SimdKernel kernel = ActiveSimdKernel();
    if (kernel != SimdKernel::kScalar) {
      // Per-tuple batched init (the memoized path, which must stay
      // tuple-at-a-time): pack this tuple's non-null evidence-attribute
      // cells and probe them with one LookupBatch.
      probe_keys_.clear();
      for (const AttrId a : source_.evidence_attrs()) {
        const ValueId v = t[a];
        if (v == kNullValue) continue;
        probe_keys_.push_back(source_.ProbeKey(a, v));
      }
      probe_ranges_.resize(probe_keys_.size());
      source_.LookupBatch(kernel, probe_keys_.data(), probe_keys_.size(),
                          probe_ranges_.data());
      ++stats_.batch_probes;
      stats_.batch_keys += probe_keys_.size();
      init_ranges = probe_ranges_.data();
      num_init_ranges = probe_ranges_.size();
      have_ranges = true;
    }
  }
  // Budgeted chases always take the legacy pop loop: a prescreen-flagged
  // pop and a verified-and-rejected pop both cost one step, but the
  // zero-survivor shortcut below would not, and budget exhaustion must
  // trip on exactly the pop the scalar path trips on.
  const bool prescreen = have_ranges && max_steps == 0;

  // Lines 2-7 of Fig. 7: initialize counters from the tuple's cells and
  // seed Ω with fully-counted rules.
  uint32_t survivors = 0;
  if (prescreen) {
    // The batched hot loop. Scratch pointers and stat tallies live in
    // locals so queue_.push_back's potential reallocation cannot force
    // them back to memory every iteration; the tallies fold into stats_
    // once per tuple. Semantically this bumps the exact counters, in
    // the exact order, the legacy loops below would — |X|=1 rules just
    // skip the counter read-modify-write (one posting entry means one
    // init bump: the counter trivially fills, and a propagation bump
    // re-deriving it from a stale epoch reaches the same guards).
    uint32_t* const counter = counter_.data();
    uint32_t* const counter_epoch = counter_epoch_.data();
    uint32_t* const queued_epoch = queued_epoch_.data();
    const uint32_t* const checked_epoch = checked_epoch_.data();
    uint64_t* const flag_cache = flag_cache_.data();
    const RuleSource& index = source_;
    const uint32_t epoch = epoch_;
    size_t hits = 0;
    size_t bumps = 0;
    size_t enqueued = 0;
    const auto flag_of = [&](uint32_t rule) -> uint32_t {
      // Enqueue-time applicability: counter full on the untouched tuple
      // proves the evidence clause, so the verdict is the negative
      // clause alone — a pure function of (rule, t[B]) for an immutable
      // index, memoized per rule in flag_cache (UINT64_MAX = empty).
      const ValueId v = t[index.target(rule)];
      const uint64_t cached = flag_cache[rule];
      if ((cached >> 1) == static_cast<uint32_t>(v)) {
        return (cached & 1) ? 0u : kRejectedBit;
      }
      const bool neg = index.NegativeMatch(rule, v);
      flag_cache[rule] =
          (static_cast<uint64_t>(static_cast<uint32_t>(v)) << 1) |
          (neg ? 1u : 0u);
      return neg ? 0u : kRejectedBit;
    };
    for (uint32_t rule_index : index.empty_evidence_rules()) {
      queued_epoch[rule_index] = epoch;
      ++enqueued;
      const uint32_t flag = flag_of(rule_index);
      queue_.push_back(rule_index | flag);
      survivors += flag == 0;
    }
    for (size_t k = 0; k < num_init_ranges; ++k) {
      const PostingRange range = init_ranges[k];
      if (range.empty()) continue;
      ++hits;
      bumps += range.size();
      for (const uint32_t* p = range.begin; p != range.end; ++p) {
        const uint32_t rule = *p;
        const uint32_t evc = index.evidence_count(rule);
        if (evc != 1) {
          if (counter_epoch[rule] != epoch) {
            counter_epoch[rule] = epoch;
            counter[rule] = 0;
          }
          if (++counter[rule] != evc) continue;
        }
        if (queued_epoch[rule] == epoch || checked_epoch[rule] == epoch) {
          continue;
        }
        queued_epoch[rule] = epoch;
        ++enqueued;
        const uint32_t flag = flag_of(rule);
        queue_.push_back(rule | flag);
        survivors += flag == 0;
      }
    }
    stats_.index_hits += hits;
    stats_.counter_bumps += bumps;
    stats_.candidates_enqueued += enqueued;
  } else {
    for (uint32_t rule_index : source_.empty_evidence_rules()) {
      queued_epoch_[rule_index] = epoch_;
      ++stats_.candidates_enqueued;
      queue_.push_back(rule_index);
    }
    if (have_ranges) {
      // Pre-probed ranges arrive in attribute order with misses as
      // empty ranges — this loop bumps the exact counters, in the exact
      // order, the scalar loop below would.
      for (size_t k = 0; k < num_init_ranges; ++k) {
        const PostingRange range = init_ranges[k];
        if (range.empty()) continue;
        ++stats_.index_hits;
        for (const uint32_t* p = range.begin; p != range.end; ++p) {
          BumpCounter(*p);
        }
      }
    } else {
      // The scalar fallback: one Lookup per non-null cell, each probe's
      // cache misses served serially.
      const auto arity = static_cast<AttrId>(t.size());
      for (AttrId a = 0; a < arity; ++a) {
        const ValueId v = t[a];
        if (v == kNullValue) continue;
        const PostingRange range = source_.Lookup(a, v);
        if (range.empty()) continue;
        ++stats_.index_hits;
        for (const uint32_t* p = range.begin; p != range.end; ++p) {
          BumpCounter(*p);
        }
      }
    }
  }

  if (prescreen && survivors == 0) {
    // Every candidate is pre-rejected and nothing can cascade: charge
    // the rejections in bulk and skip the pop loop. The checked stamps
    // the loop would have written are only ever read within this epoch,
    // and this epoch is over.
    stats_.candidates_rejected += queue_.size();
    return 0;
  }

  // Lines 8-16: chase over the candidate set.
  const bool log_writes = memo_ != nullptr || max_steps > 0;
  AttrSet assured;
  bool dirty = false;
  size_t steps = 0;
  size_t cells_changed = 0;
  while (!queue_.empty()) {
    const uint32_t entry = queue_.back();
    queue_.pop_back();
    const uint32_t rule_index = entry & ~kRejectedBit;
    if (checked_epoch_[rule_index] == epoch_) continue;
    if (max_steps > 0 && ++steps > max_steps) {
      // Budget blown: roll the rule-application stats back (cells/tuple
      // outcomes were never committed); the caller restores the tuple.
      for (const MemoCache::Write& write : writes_scratch_) {
        --stats_.rule_applications;
        --stats_.per_rule_applications[write.rule];
      }
      if (write_log_ != nullptr) write_log_->resize(log_mark);
      *exhausted = true;
      return 0;
    }
    checked_epoch_[rule_index] = epoch_;  // removed from Ω once and for all
    if (entry & kRejectedBit) {
      // Prescreen verdict from enqueue time: the negative clause failed
      // on the init tuple, so this pop rejects under the legacy check
      // too (target untouched — same test; target written — assured).
      ++stats_.candidates_rejected;
      continue;
    }
    const AttrId target = source_.target(rule_index);
    // A prescreen survivor popped before the first write needs no
    // verification: its counter filled on the untouched tuple (evidence
    // clause) and its flag cleared (negative clause), so Matches holds.
    if ((dirty || !prescreen) &&
        (assured.Contains(target) ||
         !source_.MatchesFlat(rule_index, t))) {
      ++stats_.candidates_rejected;
      continue;
    }
    const ValueId fact = source_.fact(rule_index);
    if (write_log_ != nullptr) {
      write_log_->push_back(
          {write_log_row_, target, t[target], fact, rule_index});
    }
    t[target] = fact;
    assured.UnionWith(source_.assured(rule_index));
    dirty = true;
    ++cells_changed;
    ++stats_.rule_applications;
    ++stats_.per_rule_applications[rule_index];
    if (log_writes) {
      writes_scratch_.push_back({target, fact, rule_index});
    }
    // Propagate the new value through the inverted lists (lines 13-15).
    const PostingRange range = source_.Lookup(target, fact);
    if (range.empty()) continue;
    ++stats_.index_hits;
    for (const uint32_t* p = range.begin; p != range.end; ++p) {
      if (checked_epoch_[*p] != epoch_) BumpCounter(*p);
    }
  }

  stats_.cells_changed += cells_changed;
  if (cells_changed > 0) ++stats_.tuples_changed;
  return cells_changed;
}

void FastRepairer::RepairRows(Table* table, size_t begin, size_t end) {
  const SimdKernel kernel = ActiveSimdKernel();
  if (memo_ != nullptr || kernel == SimdKernel::kScalar) {
    // Memoized rows stay interleaved (Find, chase, Insert in row order)
    // so intra-group duplicates hit the memo exactly as they always
    // have; the scalar kernel IS the legacy loop.
    for (size_t r = begin; r < end; ++r) {
      write_log_row_ = r;
      RepairTuple(table->WriteRow(r));
    }
    return;
  }

  // 64 rows per group: the key/range scratch stays in L1 and the
  // prefetched posting lines are still resident when their row's bump
  // loop runs. Only evidence-mentioned attributes are gathered — every
  // other column's probe would miss by construction.
  constexpr size_t kRowGroup = 64;
  const size_t arity = source_.arity();
  const auto ev_attrs = source_.evidence_attrs();
  for (size_t group = begin; group < end; group += kRowGroup) {
    const size_t limit = std::min(end, group + kRowGroup);
    probe_keys_.clear();
    group_offsets_.clear();
    for (size_t r = group; r < limit; ++r) {
      group_offsets_.push_back(static_cast<uint32_t>(probe_keys_.size()));
      const TupleRef t = table->row(r);
      FIXREP_CHECK_EQ(t.size(), arity);
      for (const AttrId a : ev_attrs) {
        // The value is packed into the key right here — row views must
        // not be held across later row() / WriteRow() calls, which can
        // recycle spilled blocks.
        const ValueId v = t[a];
        if (v == kNullValue) continue;
        probe_keys_.push_back(source_.ProbeKey(a, v));
      }
    }
    group_offsets_.push_back(static_cast<uint32_t>(probe_keys_.size()));
    probe_ranges_.resize(probe_keys_.size());
    source_.LookupBatch(kernel, probe_keys_.data(), probe_keys_.size(),
                        probe_ranges_.data());
    ++stats_.batch_probes;
    stats_.batch_keys += probe_keys_.size();
    for (size_t r = group; r < limit; ++r) {
      const uint32_t lo = group_offsets_[r - group];
      const uint32_t hi = group_offsets_[r - group + 1];
      write_log_row_ = r;
      ChaseTuple(table->WriteRow(r), /*max_steps=*/0, /*exhausted=*/nullptr,
                 probe_ranges_.data() + lo, hi - lo);
    }
  }
}

void FastRepairer::RepairTable(Table* table) {
  FIXREP_TRACE_SPAN("lrepair.chase");
  RepairRows(table, 0, table->num_rows());
  FlushMetrics();
}

void FastRepairer::FlushMetrics() {
  stats_.PublishDelta(published_, "lrepair");
  published_ = stats_;
  if (memo_ != nullptr) memo_->FlushMetrics();
}

}  // namespace fixrep
