#include "repair/sharded.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <utility>

#include "common/log.h"
#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "deps/violation.h"
#include "repair/lrepair.h"

namespace fixrep {

namespace {

// Routes every row to a shard by hashing its projection onto the rules'
// mentioned attributes (ValueVectorHash — the deps-layer partitioner, so
// repair shards agree with FD partitions built over the same columns).
// Rows with identical projections always share a shard; that is the
// memo-locality invariant the engine exists for.
std::vector<std::vector<uint32_t>> RouteRows(const Table& table,
                                             size_t begin_row, size_t end_row,
                                             AttrSet mentioned,
                                             size_t num_shards) {
  std::vector<AttrId> attrs;
  for (AttrId a = 0; a < static_cast<AttrId>(table.num_columns()); ++a) {
    if (mentioned.Contains(a)) attrs.push_back(a);
  }
  std::vector<std::vector<uint32_t>> shard_rows(num_shards);
  const ValueVectorHash hasher;
  std::vector<ValueId> projection(attrs.size());
  for (size_t r = begin_row; r < end_row; ++r) {
    const TupleRef row = table.row(r);
    for (size_t i = 0; i < attrs.size(); ++i) projection[i] = row[attrs[i]];
    shard_rows[hasher(projection) % num_shards].push_back(
        static_cast<uint32_t>(r));
  }
  return shard_rows;
}

}  // namespace

ShardedRepairResult ShardedRepairRows(const RuleRepository& repo,
                                      Table* table, size_t begin_row,
                                      size_t end_row,
                                      const ShardedRepairOptions& options) {
  FIXREP_CHECK(table != nullptr);
  FIXREP_CHECK(begin_row <= end_row && end_row <= table->num_rows());
  ThreadPool& pool = ThreadPool::Global();
  const size_t rows = end_row - begin_row;
  size_t num_shards = options.shards;
  if (num_shards == 0) num_shards = pool.num_workers() + 1;
  num_shards = std::min(num_shards, std::max<size_t>(rows, 1));
  const bool lenient = options.on_error != OnErrorPolicy::kAbort;
  const bool quarantining = options.on_error == OnErrorPolicy::kQuarantine &&
                            options.quarantine != nullptr;

  FIXREP_TRACE_SPAN("sharded.repair_table");
  auto& registry = CurrentMetrics();
  registry.GetCounter("fixrep.sharded.tables_repaired")->Add(1);
  registry.GetGauge("fixrep.sharded.shards")
      ->Set(static_cast<int64_t>(num_shards));
  FIXREP_LOG(Debug) << "sharded repair" << Kv("rows", rows)
                    << Kv("rules", repo.num_rules())
                    << Kv("shards", num_shards)
                    << Kv("memo", options.use_memo && !lenient ? 1 : 0);

  std::vector<std::vector<uint32_t>> shard_rows =
      RouteRows(*table, begin_row, end_row, repo.mentioned_attrs(),
                num_shards);

  // Per-shard state, created serially before any worker runs: the handle
  // (a repository's MakeHandle is serial-only), the repairer scratch on
  // its source view, and in abort mode a private memo.
  std::vector<std::unique_ptr<RuleSourceHandle>> handles;
  std::vector<std::unique_ptr<FastRepairer>> repairers;
  std::vector<std::unique_ptr<MemoCache>> memos;
  std::vector<std::vector<Diagnostic>> failures(lenient ? num_shards : 0);
  std::vector<std::vector<CellRepair>> shard_logs(
      options.write_log != nullptr ? num_shards : 0);
  handles.reserve(num_shards);
  repairers.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    handles.push_back(repo.MakeHandle());
    repairers.push_back(std::make_unique<FastRepairer>(handles[s]->source()));
    if (options.use_memo && !lenient) {
      memos.push_back(std::make_unique<MemoCache>(options.memo_capacity));
      repairers.back()->set_memo(memos.back().get());
    }
    if (lenient) {
      repairers.back()->set_max_chase_steps(options.max_chase_steps);
    }
    if (options.write_log != nullptr) {
      repairers.back()->set_write_log(&shard_logs[s]);
    }
  }

  // One shard per claim (grain 1): shards are the unit of scratch
  // affinity, and the cursor lets fast workers absorb several small
  // shards while a heavy one runs.
  pool.ParallelFor(
      num_shards, /*grain=*/1, /*max_participants=*/num_shards,
      [&](size_t begin, size_t end, size_t /*slot*/) {
        for (size_t s = begin; s < end; ++s) {
          FastRepairer& repairer = *repairers[s];
          if (!lenient) {
            for (const uint32_t r : shard_rows[s]) {
              repairer.set_write_log_row(r);
              repairer.RepairTuple(table->WriteRow(r));
            }
            continue;
          }
          for (const uint32_t r : shard_rows[s]) {
            size_t cells_changed = 0;
            repairer.set_write_log_row(r);
            const Status status = repairer.TryRepairTuple(
                table->WriteRow(r), &cells_changed);
            if (status.ok()) continue;
            failures[s].push_back(Diagnostic{r, status.code(),
                                             status.message(),
                                             table->FormatRow(r)});
          }
        }
      });

  ShardedRepairResult result;
  result.shards_used = num_shards;
  result.stats.Reset(repo.num_rules());
  for (const auto& repairer : repairers) {
    result.stats.MergeFrom(repairer->stats());
  }
  RepairStats empty;
  empty.Reset(repo.num_rules());
  result.stats.PublishDelta(empty, "lrepair");
  for (const auto& memo : memos) memo->FlushMetrics();

  if (lenient) {
    // Shard order is content-determined; diagnostics and sink output must
    // be row-ordered like the serial and pooled engines'.
    std::vector<Diagnostic> merged;
    for (auto& shard_failures : failures) {
      merged.insert(merged.end(),
                    std::make_move_iterator(shard_failures.begin()),
                    std::make_move_iterator(shard_failures.end()));
    }
    std::sort(merged.begin(), merged.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return a.line < b.line;
              });
    if (!merged.empty()) {
      registry.GetCounter("fixrep.quarantine.tuples")->Add(merged.size());
    }
    if (quarantining) {
      for (const Diagnostic& diagnostic : merged) {
        options.quarantine->Add(diagnostic);
      }
    }
    result.tuples_quarantined = merged.size();
  }

  if (options.write_log != nullptr) {
    // Each shard's capture is row-ascending (rows were routed in scan
    // order) and a row lives in exactly one shard, so a stable sort on
    // row reproduces the serial capture: rows ascending, intra-row
    // entries in chase order.
    std::vector<CellRepair>* out = options.write_log;
    const size_t mark = out->size();
    for (auto& shard_log : shard_logs) {
      out->insert(out->end(), std::make_move_iterator(shard_log.begin()),
                  std::make_move_iterator(shard_log.end()));
    }
    std::stable_sort(out->begin() + mark, out->end(),
                     [](const CellRepair& a, const CellRepair& b) {
                       return a.row < b.row;
                     });
  }
  return result;
}

ShardedRepairResult ShardedRepairTable(const RuleRepository& repo,
                                       Table* table,
                                       const ShardedRepairOptions& options) {
  FIXREP_CHECK(table != nullptr);
  return ShardedRepairRows(repo, table, 0, table->num_rows(), options);
}

}  // namespace fixrep
