#ifndef FIXREP_REPAIR_LREPAIR_H_
#define FIXREP_REPAIR_LREPAIR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "relation/table.h"
#include "repair/memo_cache.h"
#include "repair/provenance.h"
#include "repair/repair_stats.h"
#include "repair/rule_index.h"
#include "rules/rule_set.h"

namespace fixrep {

// lRepair (Fig. 7): the fast repair algorithm, O(size(Σ)) per tuple.
//
// The rule-set-derived structures live behind the RuleSource seam
// (rules/rule_source.h): a flat hash over (attribute, constant) keys
// into CSR-packed inverted lists plus flat per-rule side arrays,
// backed either by the in-RAM CompiledRuleIndex or by a memory-mapped
// RuleDict — built/opened once per rule set and shared immutably by
// every engine. A FastRepairer is only the per-thread scratch on top
// of one worker's source view:
// * Hash counters c(phi) count how many evidence attributes the current
//   tuple agrees with. When c(phi) reaches |X_phi| the rule *may* match
//   and enters the candidate set Ω; applicability is re-verified on pop
//   (counters are never decremented when a cell is overwritten, exactly
//   as in the paper — stale full counters are filtered by verification).
// * Counters use epoch stamping so per-tuple initialization is O(|R|)
//   probes, not O(|Σ|) clears.
//
// Each rule enters Ω at most once and is checked at most once per tuple,
// which is what yields the linear bound.
//
// Optionally a MemoCache (set_memo) short-circuits the chase for
// byte-identical tuples by replaying the cached write set — bit-identical
// to re-chasing because the chase is a pure function of the tuple.
class FastRepairer {
 public:
  // Compiles a private index for `rules`. The rule set must outlive the
  // repairer and must not be mutated afterwards.
  explicit FastRepairer(const RuleSet* rules);

  // Shares an existing compiled index (the parallel/incremental path:
  // one index, many cheap per-thread repairers). The index must outlive
  // the repairer.
  explicit FastRepairer(const CompiledRuleIndex* index);

  // Chases against an arbitrary source view (the dictionary-backed
  // path): typically one worker's RuleSourceHandle::source(). The view's
  // backing store and scratch must outlive the repairer.
  explicit FastRepairer(const RuleSource& source);

  const RuleSource& source() const { return source_; }

  // Attaches a memo cache (nullptr detaches). Borrowed; the cache is
  // single-owner, so never share one across concurrently-running
  // repairers.
  void set_memo(MemoCache* memo) { memo_ = memo; }
  MemoCache* memo() const { return memo_; }

  // Attaches a rule-attributed write capture (nullptr detaches): every
  // committed cell write — chase application or memo replay — appends one
  // CellRepair{row, attr, old, new, rule} to `log`, in write order. The
  // row recorded is whatever set_write_log_row last saw; RepairRows
  // maintains it itself, drivers calling RepairTuple/TryRepairTuple
  // directly set it per call. A chase that fails (budget exhausted,
  // restored tuple) leaves no entries. Borrowed and single-owner like the
  // memo: never share one log across concurrently-running repairers.
  void set_write_log(std::vector<CellRepair>* log) { write_log_ = log; }
  std::vector<CellRepair>* write_log() const { return write_log_; }
  void set_write_log_row(size_t row) { write_log_row_ = row; }

  // Repairs one tuple in place through the view; returns the number of
  // cells changed. Accepts a Table::WriteRow span or (implicitly) an
  // owning Tuple.
  size_t RepairTuple(TupleSpan t);

  // Per-tuple failure-isolating variant: reports a wrong-arity tuple as
  // kMalformedInput, an injected worker fault as kInternal, and a chase
  // exceeding the step budget (set_max_chase_steps) as kBudgetExhausted.
  // On any error the tuple is restored to its original values and no
  // changes are recorded (tuples_examined and the chase-internal work
  // counters still record the attempt). This path never consults the
  // memo cache — isolation over memoization; the repaired output is
  // bit-identical to RepairTuple's on tuples that succeed.
  Status TryRepairTuple(TupleSpan t, size_t* cells_changed);

  // Caps the number of Ω pops one TryRepairTuple chase may spend before
  // giving up with kBudgetExhausted; 0 (default) means unlimited. Each
  // rule enters Ω at most once per tuple, so a budget >= |Σ| only trips
  // on pathological rule interaction. RepairTuple ignores the budget.
  void set_max_chase_steps(size_t max_steps) { max_chase_steps_ = max_steps; }
  size_t max_chase_steps() const { return max_chase_steps_; }

  // Repairs rows [begin, end) of `table` in place — the row-group driver
  // every engine (serial, pooled parallel, streaming) funnels through.
  //
  // With a SIMD kernel active and no memo attached, rows are processed
  // in cache-sized groups: gather the group's non-null cells of the
  // evidence-mentioned attributes (cells of any other column can never
  // hit a posting list), probe them with one LookupBatch (vector
  // hashing plus slot/posting prefetch), then chase each tuple off its
  // precomputed ranges with the counter bumps running back-to-back on
  // warm postings. With the scalar kernel this is exactly the legacy
  // per-tuple loop. With a memo the rows stay per-tuple and interleaved
  // (Find, chase, Insert in row order) so the memo hit/miss sequence —
  // and therefore fixrep.memo.* — is byte-for-byte what the scalar path
  // produces. Repaired output is bit-identical on every path; only the
  // probe schedule differs.
  void RepairRows(Table* table, size_t begin, size_t end);

  // Repairs every row of `table` in place.
  void RepairTable(Table* table);

  const RepairStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.Reset(source_.num_rules());
    published_.Reset(source_.num_rules());
  }

  // Publishes stats accumulated since the last flush into the global
  // MetricsRegistry (fixrep.lrepair.*), plus the attached memo's
  // fixrep.memo.* deltas. RepairTable flushes automatically; callers
  // driving RepairTuple directly (incremental sessions, parallel
  // workers) decide their own flush granularity.
  void FlushMetrics();

  // Seeds the epoch counter so tests can exercise the uint32 wrap-around
  // hard-reset path without chasing ~4B tuples.
  void SeedEpochForTest(uint32_t epoch) { epoch_ = epoch; }

 private:
  // Queue entries are the rule id with bit 31 carrying the prescreen
  // verdict on the batched path (set = provably rejected; the index
  // build checks num_rules < 2^31).
  static constexpr uint32_t kRejectedBit = uint32_t{1} << 31;

  // Bumps the counter of `rule_index` for the current epoch; enqueues the
  // rule when its evidence counter becomes full. The prescreened batched
  // chase inlines its own variant of this inside ChaseTuple (flagged
  // enqueues, |X|=1 counter skip, local stat tallies); this out-of-line
  // form serves the legacy init loops and propagation bumps.
  void BumpCounter(uint32_t rule_index);

  // The non-memoized chase (Fig. 7 proper). A non-zero `max_steps`
  // bounds Ω pops; on exhaustion sets *exhausted, rolls the
  // rule-application stats back, and returns 0 (the caller restores the
  // tuple itself).
  //
  // `init_ranges` optionally carries the tuple's pre-probed posting
  // ranges — one per non-null evidence-attribute cell, in attribute
  // order (misses as empty ranges) — produced by LookupBatch over a row
  // group. When null, the chase probes the cells itself: batched
  // per-tuple when a SIMD kernel is active, with the legacy per-cell
  // Lookup loop otherwise. All three init paths bump identical counters
  // in identical order.
  //
  // On the batched paths with max_steps == 0 the chase is *prescreened*:
  // each candidate's applicability is decided at enqueue time (counter
  // full proves the evidence clause on the untouched tuple; the
  // negative clause is one cached NegativeMatch) and carried in the
  // queue entry's flag bit, so pops skip MatchesFlat until the first
  // write dirties the tuple — and a tuple with no surviving candidate
  // skips its pop loop wholesale. This is exact, not heuristic: a
  // flagged candidate is rejected by the legacy chase too (its target
  // untouched at pop means the same negative test fails; its target
  // written means the applier's assured set covers it), so outputs,
  // stat totals, and queue order are bit-identical to the scalar path.
  // Budgeted chases (max_steps > 0) stay on the legacy pop loop so a
  // step counts exactly what the scalar path counts.
  size_t ChaseTuple(TupleSpan t, size_t max_steps = 0,
                    bool* exhausted = nullptr,
                    const PostingRange* init_ranges = nullptr,
                    size_t num_init_ranges = 0);

  std::unique_ptr<const CompiledRuleIndex> owned_index_;
  RuleSource source_;
  MemoCache* memo_ = nullptr;
  std::vector<CellRepair>* write_log_ = nullptr;
  size_t write_log_row_ = 0;
  size_t max_chase_steps_ = 0;

  // Per-tuple scratch state, epoch-stamped.
  uint32_t epoch_ = 0;
  std::vector<uint32_t> counter_;
  std::vector<uint32_t> counter_epoch_;
  std::vector<uint32_t> queued_epoch_;   // rule has entered Ω this epoch
  std::vector<uint32_t> checked_epoch_;  // rule was popped and consumed
  std::vector<uint32_t> queue_;          // Ω (id | kRejectedBit when flagged)
  std::vector<MemoCache::Write> writes_scratch_;  // chase log for the memo

  // The prescreen verdict memo: per rule, the last (t[B], verdict) pair
  // packed (value << 1) | is_negative with UINT64_MAX as "empty". The
  // verdict is a pure function of (rule, value) for an immutable index,
  // so the cache never expires — on duplicate-heavy data almost every
  // enqueue-time check is one load + compare.
  std::vector<uint64_t> flag_cache_;

  // Batched-probe scratch (RepairRows row groups and per-tuple batched
  // init): packed keys for every non-null cell, their resolved posting
  // ranges, and each row's [begin, end) offsets into them.
  std::vector<uint64_t> probe_keys_;
  std::vector<PostingRange> probe_ranges_;
  std::vector<uint32_t> group_offsets_;

  RepairStats stats_;
  RepairStats published_;  // snapshot of stats_ at the last FlushMetrics
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_LREPAIR_H_
