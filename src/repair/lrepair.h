#ifndef FIXREP_REPAIR_LREPAIR_H_
#define FIXREP_REPAIR_LREPAIR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "relation/table.h"
#include "repair/memo_cache.h"
#include "repair/repair_stats.h"
#include "repair/rule_index.h"
#include "rules/rule_set.h"

namespace fixrep {

// lRepair (Fig. 7): the fast repair algorithm, O(size(Σ)) per tuple.
//
// The rule-set-derived structures live in CompiledRuleIndex (flat hash
// over (attribute, constant) keys into CSR-packed inverted lists, plus
// flat per-rule side arrays) — built once per rule set and shared
// immutably by every engine. A FastRepairer is only the per-thread
// scratch on top of it:
// * Hash counters c(phi) count how many evidence attributes the current
//   tuple agrees with. When c(phi) reaches |X_phi| the rule *may* match
//   and enters the candidate set Ω; applicability is re-verified on pop
//   (counters are never decremented when a cell is overwritten, exactly
//   as in the paper — stale full counters are filtered by verification).
// * Counters use epoch stamping so per-tuple initialization is O(|R|)
//   probes, not O(|Σ|) clears.
//
// Each rule enters Ω at most once and is checked at most once per tuple,
// which is what yields the linear bound.
//
// Optionally a MemoCache (set_memo) short-circuits the chase for
// byte-identical tuples by replaying the cached write set — bit-identical
// to re-chasing because the chase is a pure function of the tuple.
class FastRepairer {
 public:
  // Compiles a private index for `rules`. The rule set must outlive the
  // repairer and must not be mutated afterwards.
  explicit FastRepairer(const RuleSet* rules);

  // Shares an existing compiled index (the parallel/incremental path:
  // one index, many cheap per-thread repairers). The index must outlive
  // the repairer.
  explicit FastRepairer(const CompiledRuleIndex* index);

  const CompiledRuleIndex& index() const { return *index_; }

  // Attaches a memo cache (nullptr detaches). Borrowed; the cache is
  // single-owner, so never share one across concurrently-running
  // repairers.
  void set_memo(MemoCache* memo) { memo_ = memo; }
  MemoCache* memo() const { return memo_; }

  // Repairs one tuple in place through the view; returns the number of
  // cells changed. Accepts a Table::WriteRow span or (implicitly) an
  // owning Tuple.
  size_t RepairTuple(TupleSpan t);

  // Per-tuple failure-isolating variant: reports a wrong-arity tuple as
  // kMalformedInput, an injected worker fault as kInternal, and a chase
  // exceeding the step budget (set_max_chase_steps) as kBudgetExhausted.
  // On any error the tuple is restored to its original values and no
  // changes are recorded (tuples_examined and the chase-internal work
  // counters still record the attempt). This path never consults the
  // memo cache — isolation over memoization; the repaired output is
  // bit-identical to RepairTuple's on tuples that succeed.
  Status TryRepairTuple(TupleSpan t, size_t* cells_changed);

  // Caps the number of Ω pops one TryRepairTuple chase may spend before
  // giving up with kBudgetExhausted; 0 (default) means unlimited. Each
  // rule enters Ω at most once per tuple, so a budget >= |Σ| only trips
  // on pathological rule interaction. RepairTuple ignores the budget.
  void set_max_chase_steps(size_t max_steps) { max_chase_steps_ = max_steps; }
  size_t max_chase_steps() const { return max_chase_steps_; }

  // Repairs every row of `table` in place.
  void RepairTable(Table* table);

  const RepairStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.Reset(index_->num_rules());
    published_.Reset(index_->num_rules());
  }

  // Publishes stats accumulated since the last flush into the global
  // MetricsRegistry (fixrep.lrepair.*), plus the attached memo's
  // fixrep.memo.* deltas. RepairTable flushes automatically; callers
  // driving RepairTuple directly (incremental sessions, parallel
  // workers) decide their own flush granularity.
  void FlushMetrics();

  // Seeds the epoch counter so tests can exercise the uint32 wrap-around
  // hard-reset path without chasing ~4B tuples.
  void SeedEpochForTest(uint32_t epoch) { epoch_ = epoch; }

 private:
  // Bumps the counter of `rule_index` for the current epoch; enqueues the
  // rule when its evidence counter becomes full.
  void BumpCounter(uint32_t rule_index);

  // The non-memoized chase (Fig. 7 proper). A non-zero `max_steps`
  // bounds Ω pops; on exhaustion sets *exhausted, rolls the
  // rule-application stats back, and returns 0 (the caller restores the
  // tuple itself).
  size_t ChaseTuple(TupleSpan t, size_t max_steps = 0,
                    bool* exhausted = nullptr);

  std::unique_ptr<const CompiledRuleIndex> owned_index_;
  const CompiledRuleIndex* index_;
  MemoCache* memo_ = nullptr;
  size_t max_chase_steps_ = 0;

  // Per-tuple scratch state, epoch-stamped.
  uint32_t epoch_ = 0;
  std::vector<uint32_t> counter_;
  std::vector<uint32_t> counter_epoch_;
  std::vector<uint32_t> queued_epoch_;   // rule has entered Ω this epoch
  std::vector<uint32_t> checked_epoch_;  // rule was popped and consumed
  std::vector<uint32_t> queue_;          // Ω
  std::vector<MemoCache::Write> writes_scratch_;  // chase log for the memo

  RepairStats stats_;
  RepairStats published_;  // snapshot of stats_ at the last FlushMetrics
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_LREPAIR_H_
