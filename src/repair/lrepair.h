#ifndef FIXREP_REPAIR_LREPAIR_H_
#define FIXREP_REPAIR_LREPAIR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "relation/table.h"
#include "repair/repair_stats.h"
#include "rules/rule_set.h"

namespace fixrep {

// lRepair (Fig. 7): the fast repair algorithm, O(size(Σ)) per tuple.
//
// Two indices drive it:
// * Inverted lists map a key (attribute A, constant a) to every rule phi
//   with A in X_phi and tp_phi[A] = a. Built once per rule set, reused
//   for every tuple.
// * Hash counters c(phi) count how many evidence attributes the current
//   tuple agrees with. When c(phi) reaches |X_phi| the rule *may* match
//   and enters the candidate set Ω; applicability is re-verified on pop
//   (counters are never decremented when a cell is overwritten, exactly
//   as in the paper — stale full counters are filtered by verification).
//
// Each rule enters Ω at most once and is checked at most once per tuple,
// which is what yields the linear bound. Counters use epoch stamping so
// per-tuple initialization is O(|R|) probes, not O(|Σ|) clears.
class FastRepairer {
 public:
  // Builds the inverted lists for `rules`. The rule set must outlive the
  // repairer and must not be mutated afterwards.
  explicit FastRepairer(const RuleSet* rules);

  // Repairs one tuple in place; returns the number of cells changed.
  size_t RepairTuple(Tuple* t);

  // Repairs every row of `table` in place.
  void RepairTable(Table* table);

  const RepairStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.Reset(rules_->size());
    published_.Reset(rules_->size());
  }

  // Publishes stats accumulated since the last flush into the global
  // MetricsRegistry (fixrep.lrepair.*). RepairTable flushes automatically;
  // callers driving RepairTuple directly (incremental sessions, parallel
  // workers) decide their own flush granularity.
  void FlushMetrics();

 private:
  static uint64_t Key(AttrId attr, ValueId value) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(attr)) << 32) |
           static_cast<uint32_t>(value);
  }

  // Bumps the counter of `rule_index` for the current epoch; enqueues the
  // rule when its evidence counter becomes full.
  void BumpCounter(uint32_t rule_index);

  const RuleSet* rules_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> inverted_;
  std::vector<uint32_t> empty_evidence_rules_;  // |X_phi| == 0: always in Ω

  // Per-tuple scratch state, epoch-stamped.
  uint32_t epoch_ = 0;
  std::vector<uint32_t> counter_;
  std::vector<uint32_t> counter_epoch_;
  std::vector<uint32_t> queued_epoch_;   // rule has entered Ω this epoch
  std::vector<uint32_t> checked_epoch_;  // rule was popped and consumed
  std::vector<uint32_t> queue_;          // Ω

  RepairStats stats_;
  RepairStats published_;  // snapshot of stats_ at the last FlushMetrics
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_LREPAIR_H_
