#ifndef FIXREP_REPAIR_RULE_INDEX_H_
#define FIXREP_REPAIR_RULE_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/simd.h"
#include "relation/table.h"
#include "rules/rule_set.h"
#include "rules/rule_source.h"

namespace fixrep {

// Immutable, cache-friendly compilation of a RuleSet for the lRepair hot
// path. Built once per rule set and shared read-only by every repair
// engine (serial, pooled parallel, sharded, incremental) — the per-call,
// per-worker index rebuild of the old design is gone.
//
// Layout:
// * An open-addressing flat hash (linear probing, power-of-two capacity,
//   <=50% load) maps the packed key (attr << 32 | value) to a postings
//   range. Probing touches one contiguous RuleSlot array — no node
//   allocations, no pointer chasing.
// * Postings are CSR-packed: one contiguous uint32_t rule-id array; each
//   hash slot stores its [begin, end) offsets.
// * Flat side arrays mirror the per-rule fields the chase touches
//   (|X_phi|, target attribute, fact value, assured bitmask), so counter
//   bumps and propagation never dereference a FixingRule.
// * The full evidence patterns and negative-pattern sets are CSR-packed
//   too (MatchesFlat), so candidate re-verification walks flat
//   (attr, value) pairs instead of chasing RuleSet/FixingRule pointers.
//
// This is the in-RAM RuleSource backend (rules/rule_source.h): engines
// chase against MakeSource()'s span view, and MakeHandle() plugs the
// index into any RuleRepository-driven engine. Because the index is
// built from the run's own ValuePool, its view needs no value
// translation and no posting cache — every accessor is exactly the load
// the pre-seam code performed. The direct probe methods below delegate
// to the same view and remain for callers and tests that address the
// index concretely.
//
// The rule set must outlive the index and must not be mutated afterwards.
class CompiledRuleIndex : public RuleRepository {
 public:
  explicit CompiledRuleIndex(const RuleSet* rules);

  CompiledRuleIndex(const CompiledRuleIndex&) = delete;
  CompiledRuleIndex& operator=(const CompiledRuleIndex&) = delete;

  const RuleSet& rules() const { return *rules_; }
  size_t num_rules() const override { return evidence_count_.size(); }
  size_t arity() const override { return arity_; }

  // The span view every engine chases against. Valid for the life of
  // the index; copies are cheap.
  RuleSource MakeSource() const { return view_; }

  // RuleRepository: a handle is just the view (no per-worker scratch).
  std::unique_ptr<RuleSourceHandle> MakeHandle() const override {
    return std::make_unique<RuleSourceHandle>(view_);
  }

  // RuleSetFingerprint of the compiled set, computed on first use.
  uint64_t fingerprint() const override;

  static uint64_t PackKey(AttrId attr, ValueId value) {
    return RuleSource::PackKey(attr, value);
  }

  // Rules phi with attr in X_phi and tp_phi[attr] == value. Empty range
  // when no rule mentions the cell.
  PostingRange Lookup(AttrId attr, ValueId value) const {
    return view_.Lookup(attr, value);
  }

  // Batched probe (see RuleSource::LookupBatch).
  void LookupBatch(SimdKernel kernel, const uint64_t* keys, size_t n,
                   PostingRange* out) const {
    view_.LookupBatch(kernel, keys, n, out);
  }
  void LookupBatch(const uint64_t* keys, size_t n, PostingRange* out) const {
    view_.LookupBatch(keys, n, out);
  }

  // |X_phi| — the evidence counter threshold for rule i.
  uint32_t evidence_count(uint32_t rule) const {
    return evidence_count_[rule];
  }
  AttrId target(uint32_t rule) const { return target_[rule]; }
  ValueId fact(uint32_t rule) const { return fact_[rule]; }
  AttrSet assured(uint32_t rule) const {
    return AttrSet::FromBits(assured_bits_[rule]);
  }

  // v in Tp[B_phi] — the negative-pattern clause of Matches alone.
  bool NegativeMatch(uint32_t rule, ValueId v) const {
    return view_.NegativeMatch(rule, v);
  }

  // t |- phi, evaluated over the CSR side arrays. Semantically identical
  // to rules().rule(i).Matches(t).
  bool MatchesFlat(uint32_t rule, TupleRef t) const {
    return view_.MatchesFlat(rule, t);
  }

  // Rules with empty evidence (always candidates).
  const std::vector<uint32_t>& empty_evidence_rules() const {
    return empty_evidence_rules_;
  }

  // The distinct attributes appearing in any rule's evidence pattern,
  // ascending.
  const std::vector<AttrId>& evidence_attrs() const {
    return evidence_attr_list_;
  }

  // Union of every rule's evidence and target attributes — the attribute
  // closure the chase can ever read or write. Columns outside this set
  // are invisible to repair, which is what makes streaming column
  // pruning (repair/streaming.h) safe.
  AttrSet mentioned_attrs() const override { return mentioned_attrs_; }

  size_t num_keys() const { return num_keys_; }
  size_t num_postings() const { return postings_.size(); }
  // Total heap footprint of the compiled structures, in bytes.
  size_t bytes() const;

 private:
  const RuleSet* rules_;
  size_t arity_ = 0;
  size_t num_keys_ = 0;
  size_t mask_ = 0;
  std::vector<RuleSlot> slots_;
  std::vector<uint32_t> postings_;
  std::vector<uint32_t> evidence_count_;
  std::vector<AttrId> target_;
  std::vector<ValueId> fact_;
  std::vector<uint64_t> assured_bits_;
  std::vector<uint32_t> empty_evidence_rules_;
  // CSR evidence patterns and negative-pattern sets (MatchesFlat):
  // rule i's evidence pairs are (ev_attrs_, ev_values_)[ev_offsets_[i]
  // .. ev_offsets_[i+1]), its sorted negative patterns
  // neg_values_[neg_offsets_[i] .. neg_offsets_[i+1]).
  std::vector<uint32_t> ev_offsets_;
  std::vector<AttrId> ev_attrs_;
  std::vector<ValueId> ev_values_;
  std::vector<uint32_t> neg_offsets_;
  std::vector<ValueId> neg_values_;
  std::vector<AttrId> evidence_attr_list_;
  AttrSet mentioned_attrs_;
  RuleSource view_;  // spans over the vectors above, wired in the ctor

  mutable std::once_flag fingerprint_once_;
  mutable uint64_t fingerprint_ = 0;
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_RULE_INDEX_H_
