#ifndef FIXREP_REPAIR_RULE_INDEX_H_
#define FIXREP_REPAIR_RULE_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/simd.h"
#include "relation/table.h"
#include "rules/rule_set.h"

namespace fixrep {

// Contiguous slice of a CSR postings array: the indices of every rule
// whose evidence pattern contains one (attribute, value) cell.
struct PostingRange {
  const uint32_t* begin = nullptr;
  const uint32_t* end = nullptr;

  size_t size() const { return static_cast<size_t>(end - begin); }
  bool empty() const { return begin == end; }
};

// Immutable, cache-friendly compilation of a RuleSet for the lRepair hot
// path. Built once per rule set and shared read-only by every repair
// engine (serial, pooled parallel, incremental) — the per-call,
// per-worker index rebuild of the old design is gone.
//
// Layout:
// * An open-addressing flat hash (linear probing, power-of-two capacity,
//   <=50% load) maps the packed key (attr << 32 | value) to a postings
//   range. Probing touches one contiguous Slot array — no node
//   allocations, no pointer chasing.
// * Postings are CSR-packed: one contiguous uint32_t rule-id array; each
//   hash slot stores its [begin, end) offsets.
// * Flat side arrays mirror the per-rule fields the chase touches
//   (|X_phi|, target attribute, fact value, assured bitmask), so counter
//   bumps and propagation never dereference a FixingRule.
// * The full evidence patterns and negative-pattern sets are CSR-packed
//   too (MatchesFlat), so candidate re-verification walks flat
//   (attr, value) pairs instead of chasing RuleSet/FixingRule pointers.
//
// The rule set must outlive the index and must not be mutated afterwards.
class CompiledRuleIndex {
 public:
  explicit CompiledRuleIndex(const RuleSet* rules);

  CompiledRuleIndex(const CompiledRuleIndex&) = delete;
  CompiledRuleIndex& operator=(const CompiledRuleIndex&) = delete;

  const RuleSet& rules() const { return *rules_; }
  size_t num_rules() const { return evidence_count_.size(); }
  size_t arity() const { return arity_; }

  // The packed probe key for one cell. attr < 64 (schemas are bounded to
  // 64 attributes) and interned values are non-negative, so every valid
  // key has its top bits clear and UINT64_MAX can mark an empty slot.
  static uint64_t PackKey(AttrId attr, ValueId value) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(attr)) << 32) |
           static_cast<uint32_t>(value);
  }

  // Rules phi with attr in X_phi and tp_phi[attr] == value. Empty range
  // when no rule mentions the cell.
  PostingRange Lookup(AttrId attr, ValueId value) const {
    return Resolve(PackKey(attr, value), Hash(PackKey(attr, value)));
  }

  // Batched probe (the lRepair counter-initialization hot path): hashes
  // `n` packed keys with `kernel`, prefetches every probed Slot
  // cacheline, resolves the probes, and prefetches each hit's posting
  // range before returning — by the time the caller's bump loop runs,
  // the postings are (usually) already in flight. out[i] is exactly what
  // Lookup on key i returns, for every kernel: batching buys
  // memory-level parallelism, never different results.
  void LookupBatch(SimdKernel kernel, const uint64_t* keys, size_t n,
                   PostingRange* out) const;
  void LookupBatch(const uint64_t* keys, size_t n, PostingRange* out) const {
    LookupBatch(ActiveSimdKernel(), keys, n, out);
  }

  // |X_phi| — the evidence counter threshold for rule i.
  uint32_t evidence_count(uint32_t rule) const {
    return evidence_count_[rule];
  }
  AttrId target(uint32_t rule) const { return target_[rule]; }
  ValueId fact(uint32_t rule) const { return fact_[rule]; }
  AttrSet assured(uint32_t rule) const {
    return AttrSet::FromBits(assured_bits_[rule]);
  }

  // v in Tp[B_phi] — the negative-pattern clause of Matches alone,
  // evaluated by binary search of rule i's flat sorted slice. The
  // prescreened batched chase uses this at enqueue time: right after
  // counter initialization the tuple is untouched, so a full counter
  // proves the evidence clause and applicability reduces to this test.
  bool NegativeMatch(uint32_t rule, ValueId v) const {
    const ValueId* neg_begin = neg_values_.data() + neg_offsets_[rule];
    const ValueId* neg_end = neg_values_.data() + neg_offsets_[rule + 1];
    return std::binary_search(neg_begin, neg_end, v);
  }

  // t |- phi, evaluated over the CSR side arrays: t[B] in Tp[B] (binary
  // search of the flat sorted slice) and t[X] = tp[X] (flat pair walk).
  // Semantically identical to rules().rule(i).Matches(t) — the chase
  // uses this form so candidate verification never leaves the index's
  // contiguous arrays.
  bool MatchesFlat(uint32_t rule, TupleRef t) const {
    if (!NegativeMatch(rule, t[target_[rule]])) return false;
    const uint32_t ev_end = ev_offsets_[rule + 1];
    for (uint32_t e = ev_offsets_[rule]; e < ev_end; ++e) {
      if (t[ev_attrs_[e]] != ev_values_[e]) return false;
    }
    return true;
  }

  // Rules with empty evidence (always candidates).
  const std::vector<uint32_t>& empty_evidence_rules() const {
    return empty_evidence_rules_;
  }

  // The distinct attributes appearing in any rule's evidence pattern,
  // ascending. Cells of any other attribute can never hit a posting
  // list, so the batched gather probes only these columns; the legacy
  // scalar loop still probes every cell and gets the same (empty)
  // answers for the rest.
  const std::vector<AttrId>& evidence_attrs() const {
    return evidence_attr_list_;
  }

  // Union of every rule's evidence and target attributes — the attribute
  // closure the chase can ever read or write. Columns outside this set
  // are invisible to repair, which is what makes streaming column
  // pruning (repair/streaming.h) safe.
  AttrSet mentioned_attrs() const { return mentioned_attrs_; }

  size_t num_keys() const { return num_keys_; }
  size_t num_postings() const { return postings_.size(); }
  // Total heap footprint of the compiled structures, in bytes.
  size_t bytes() const;

 private:
  struct Slot {
    uint64_t key = kEmptyKey;
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  static constexpr uint64_t kEmptyKey = UINT64_MAX;

  // SplitMix64 finalizer (common/simd.h): full avalanche so linear
  // probing stays short. HashBatch computes the same function 2-4 keys
  // at a time.
  static uint64_t Hash(uint64_t x) { return SplitMix64(x); }

  // The shared probe tail: walk from the hashed home slot to the key's
  // slot or the first empty one.
  PostingRange Resolve(uint64_t key, uint64_t hash) const {
    size_t slot = hash & mask_;
    while (true) {
      const Slot& s = slots_[slot];
      if (s.key == key) {
        return {postings_.data() + s.begin, postings_.data() + s.end};
      }
      if (s.key == kEmptyKey) return {};
      slot = (slot + 1) & mask_;
    }
  }

  const RuleSet* rules_;
  size_t arity_ = 0;
  size_t num_keys_ = 0;
  size_t mask_ = 0;
  std::vector<Slot> slots_;
  std::vector<uint32_t> postings_;
  std::vector<uint32_t> evidence_count_;
  std::vector<AttrId> target_;
  std::vector<ValueId> fact_;
  std::vector<uint64_t> assured_bits_;
  std::vector<uint32_t> empty_evidence_rules_;
  // CSR evidence patterns and negative-pattern sets (MatchesFlat):
  // rule i's evidence pairs are (ev_attrs_, ev_values_)[ev_offsets_[i]
  // .. ev_offsets_[i+1]), its sorted negative patterns
  // neg_values_[neg_offsets_[i] .. neg_offsets_[i+1]).
  std::vector<uint32_t> ev_offsets_;
  std::vector<AttrId> ev_attrs_;
  std::vector<ValueId> ev_values_;
  std::vector<uint32_t> neg_offsets_;
  std::vector<ValueId> neg_values_;
  std::vector<AttrId> evidence_attr_list_;
  AttrSet mentioned_attrs_;
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_RULE_INDEX_H_
