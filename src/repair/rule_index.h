#ifndef FIXREP_REPAIR_RULE_INDEX_H_
#define FIXREP_REPAIR_RULE_INDEX_H_

#include <cstdint>
#include <vector>

#include "relation/table.h"
#include "rules/rule_set.h"

namespace fixrep {

// Contiguous slice of a CSR postings array: the indices of every rule
// whose evidence pattern contains one (attribute, value) cell.
struct PostingRange {
  const uint32_t* begin = nullptr;
  const uint32_t* end = nullptr;

  size_t size() const { return static_cast<size_t>(end - begin); }
  bool empty() const { return begin == end; }
};

// Immutable, cache-friendly compilation of a RuleSet for the lRepair hot
// path. Built once per rule set and shared read-only by every repair
// engine (serial, pooled parallel, incremental) — the per-call,
// per-worker index rebuild of the old design is gone.
//
// Layout:
// * An open-addressing flat hash (linear probing, power-of-two capacity,
//   <=50% load) maps the packed key (attr << 32 | value) to a postings
//   range. Probing touches one contiguous Slot array — no node
//   allocations, no pointer chasing.
// * Postings are CSR-packed: one contiguous uint32_t rule-id array; each
//   hash slot stores its [begin, end) offsets.
// * Flat side arrays mirror the per-rule fields the chase touches
//   (|X_phi|, target attribute, fact value, assured bitmask), so counter
//   bumps and propagation never dereference a FixingRule.
//
// The rule set must outlive the index and must not be mutated afterwards.
class CompiledRuleIndex {
 public:
  explicit CompiledRuleIndex(const RuleSet* rules);

  CompiledRuleIndex(const CompiledRuleIndex&) = delete;
  CompiledRuleIndex& operator=(const CompiledRuleIndex&) = delete;

  const RuleSet& rules() const { return *rules_; }
  size_t num_rules() const { return evidence_count_.size(); }
  size_t arity() const { return arity_; }

  // Rules phi with attr in X_phi and tp_phi[attr] == value. Empty range
  // when no rule mentions the cell.
  PostingRange Lookup(AttrId attr, ValueId value) const {
    const uint64_t key = Key(attr, value);
    size_t slot = Hash(key) & mask_;
    while (true) {
      const Slot& s = slots_[slot];
      if (s.key == key) {
        return {postings_.data() + s.begin, postings_.data() + s.end};
      }
      if (s.key == kEmptyKey) return {};
      slot = (slot + 1) & mask_;
    }
  }

  // |X_phi| — the evidence counter threshold for rule i.
  uint32_t evidence_count(uint32_t rule) const {
    return evidence_count_[rule];
  }
  AttrId target(uint32_t rule) const { return target_[rule]; }
  ValueId fact(uint32_t rule) const { return fact_[rule]; }
  AttrSet assured(uint32_t rule) const {
    return AttrSet::FromBits(assured_bits_[rule]);
  }

  // Rules with empty evidence (always candidates).
  const std::vector<uint32_t>& empty_evidence_rules() const {
    return empty_evidence_rules_;
  }

  // Union of every rule's evidence and target attributes — the attribute
  // closure the chase can ever read or write. Columns outside this set
  // are invisible to repair, which is what makes streaming column
  // pruning (repair/streaming.h) safe.
  AttrSet mentioned_attrs() const { return mentioned_attrs_; }

  size_t num_keys() const { return num_keys_; }
  size_t num_postings() const { return postings_.size(); }
  // Total heap footprint of the compiled structures, in bytes.
  size_t bytes() const;

 private:
  struct Slot {
    uint64_t key = kEmptyKey;
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  // attr < 64 (schemas are bounded to 64 attributes), so every valid key
  // has its top bits clear and UINT64_MAX can serve as the empty marker.
  static constexpr uint64_t kEmptyKey = UINT64_MAX;

  static uint64_t Key(AttrId attr, ValueId value) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(attr)) << 32) |
           static_cast<uint32_t>(value);
  }

  // SplitMix64 finalizer: full avalanche so linear probing stays short.
  static uint64_t Hash(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  const RuleSet* rules_;
  size_t arity_ = 0;
  size_t num_keys_ = 0;
  size_t mask_ = 0;
  std::vector<Slot> slots_;
  std::vector<uint32_t> postings_;
  std::vector<uint32_t> evidence_count_;
  std::vector<AttrId> target_;
  std::vector<ValueId> fact_;
  std::vector<uint64_t> assured_bits_;
  std::vector<uint32_t> empty_evidence_rules_;
  AttrSet mentioned_attrs_;
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_RULE_INDEX_H_
