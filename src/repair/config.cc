#include "repair/config.h"

#include <cctype>
#include <cstdlib>
#include <optional>

#include "common/quarantine.h"

namespace fixrep {

namespace {

bool ParseUint(const std::string& text, size_t* out) {
  // strtoull would happily wrap "-1" into a huge count; digits only.
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = static_cast<size_t>(value);
  return true;
}

std::optional<bool> ParseBool(const std::string& text) {
  // Empty = flag style ("--prune" with no value).
  if (text.empty() || text == "true" || text == "1" || text == "on" ||
      text == "yes") {
    return true;
  }
  if (text == "false" || text == "0" || text == "off" || text == "no") {
    return false;
  }
  return std::nullopt;
}

Status BadValue(const std::string& key, const std::string& value,
                const std::string& want) {
  return Status::MalformedInput("bad value '" + value + "' for config key '" +
                                key + "' (want " + want + ")");
}

}  // namespace

bool ParseByteSize(const std::string& text, size_t* bytes) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return false;
  std::string suffix(end);
  if (!suffix.empty() && (suffix.back() == 'B' || suffix.back() == 'b')) {
    suffix.pop_back();
  }
  size_t scale = 1;
  if (suffix == "K" || suffix == "k") {
    scale = size_t{1} << 10;
  } else if (suffix == "M" || suffix == "m") {
    scale = size_t{1} << 20;
  } else if (suffix == "G" || suffix == "g") {
    scale = size_t{1} << 30;
  } else if (!suffix.empty()) {
    return false;
  }
  *bytes = static_cast<size_t>(value) * scale;
  return true;
}

Status ParseRepairConfig(const std::string& key, const std::string& value,
                         RepairConfig* config) {
  if (key == "engine") {
    if (value == "lrepair") {
      config->engine = RepairEngine::kLRepair;
    } else if (value == "crepair") {
      config->engine = RepairEngine::kCRepair;
    } else {
      return BadValue(key, value, "lrepair|crepair");
    }
    return Status::Ok();
  }
  if (key == "threads") {
    size_t threads = 0;
    if (!ParseUint(value, &threads)) {
      return BadValue(key, value, "a thread count; 0 = pool width");
    }
    config->threads = threads;
    return Status::Ok();
  }
  if (key == "shards") {
    size_t shards = 0;
    if (!ParseUint(value, &shards)) {
      return BadValue(key, value, "a shard count");
    }
    config->shards = shards;
    return Status::Ok();
  }
  if (key == "rules-dict") {
    if (value.empty()) return BadValue(key, value, "a dictionary path");
    config->rules_dict = value;
    return Status::Ok();
  }
  if (key == "memo") {
    const std::optional<bool> memo = ParseBool(value);
    if (!memo.has_value()) return BadValue(key, value, "a boolean");
    config->use_memo = *memo;
    return Status::Ok();
  }
  if (key == "no-memo") {
    const std::optional<bool> no_memo = ParseBool(value);
    if (!no_memo.has_value()) return BadValue(key, value, "a boolean");
    config->use_memo = !*no_memo;
    return Status::Ok();
  }
  if (key == "memo-capacity") {
    size_t capacity = 0;
    if (!ParseUint(value, &capacity) || capacity == 0) {
      return BadValue(key, value, "a positive entry count");
    }
    config->memo_capacity = capacity;
    return Status::Ok();
  }
  if (key == "on-error") {
    const std::optional<OnErrorPolicy> policy = TryParseOnErrorPolicy(value);
    if (!policy.has_value()) {
      return BadValue(key, value, "abort|skip|quarantine");
    }
    config->on_error = *policy;
    return Status::Ok();
  }
  if (key == "max-chase-steps") {
    size_t steps = 0;
    if (!ParseUint(value, &steps)) {
      return BadValue(key, value, "a step budget; 0 = unlimited");
    }
    config->max_chase_steps = steps;
    return Status::Ok();
  }
  if (key == "chunk-rows") {
    if (value == "whole-file") {
      config->chunk_rows = RepairConfig::kWholeFile;
      return Status::Ok();
    }
    size_t rows = 0;
    if (!ParseUint(value, &rows) || rows == 0) {
      return BadValue(key, value, "a positive row count or whole-file");
    }
    config->chunk_rows = rows;
    return Status::Ok();
  }
  if (key == "memory-budget") {
    size_t bytes = 0;
    if (!ParseByteSize(value, &bytes) || bytes == 0) {
      return BadValue(key, value, "e.g. 64MB, 512K, 1G");
    }
    config->memory_budget_bytes = bytes;
    return Status::Ok();
  }
  if (key == "prune") {
    const std::optional<bool> prune = ParseBool(value);
    if (!prune.has_value()) return BadValue(key, value, "a boolean");
    config->prune_columns = *prune;
    return Status::Ok();
  }
  if (key == "wal") {
    if (value.empty()) return BadValue(key, value, "a log path");
    config->wal_path = value;
    return Status::Ok();
  }
  if (key == "resume") {
    const std::optional<bool> resume = ParseBool(value);
    if (!resume.has_value()) return BadValue(key, value, "a boolean");
    config->resume = *resume;
    return Status::Ok();
  }
  if (key == "scoped-metrics") {
    const std::optional<bool> scoped = ParseBool(value);
    if (!scoped.has_value()) return BadValue(key, value, "a boolean");
    config->scoped_metrics = *scoped;
    return Status::Ok();
  }
  return Status::MalformedInput("unknown repair config key '" + key + "'");
}

std::vector<std::pair<std::string, std::string>> FormatRepairConfig(
    const RepairConfig& config) {
  const RepairConfig defaults;
  std::vector<std::pair<std::string, std::string>> out;
  if (config.engine == RepairEngine::kCRepair) {
    out.emplace_back("engine", "crepair");
  }
  if (config.threads != defaults.threads) {
    out.emplace_back("threads", std::to_string(config.threads));
  }
  if (config.shards != defaults.shards) {
    out.emplace_back("shards", std::to_string(config.shards));
  }
  if (!config.rules_dict.empty()) {
    out.emplace_back("rules-dict", config.rules_dict);
  }
  if (config.use_memo != defaults.use_memo) {
    out.emplace_back("memo", "false");
  }
  if (config.memo_capacity != defaults.memo_capacity) {
    out.emplace_back("memo-capacity", std::to_string(config.memo_capacity));
  }
  if (config.on_error != defaults.on_error) {
    out.emplace_back("on-error", OnErrorPolicyName(config.on_error));
  }
  if (config.max_chase_steps != defaults.max_chase_steps) {
    out.emplace_back("max-chase-steps",
                     std::to_string(config.max_chase_steps));
  }
  if (config.chunk_rows != defaults.chunk_rows) {
    out.emplace_back("chunk-rows",
                     config.chunk_rows == RepairConfig::kWholeFile
                         ? "whole-file"
                         : std::to_string(config.chunk_rows));
  }
  if (config.memory_budget_bytes != defaults.memory_budget_bytes) {
    out.emplace_back("memory-budget",
                     std::to_string(config.memory_budget_bytes));
  }
  if (config.prune_columns) out.emplace_back("prune", "true");
  if (!config.wal_path.empty()) out.emplace_back("wal", config.wal_path);
  if (config.resume) out.emplace_back("resume", "true");
  if (config.scoped_metrics) out.emplace_back("scoped-metrics", "true");
  return out;
}

bool RepairConfigKeyIsSessionLocal(const std::string& key) {
  return key == "rules-dict" || key == "chunk-rows" ||
         key == "memory-budget" || key == "prune" || key == "wal" ||
         key == "resume" || key == "scoped-metrics";
}

}  // namespace fixrep
