#include "repair/streaming.h"

#include <algorithm>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

#include "common/log.h"
#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "relation/row_store.h"
#include "repair/lrepair.h"
#include "repair/sharded.h"

namespace fixrep {

namespace {

// Rows between live fixrep.progress.rows publications. Small enough that
// an endpoint scrape mid-chunk sees movement even in whole-file spill
// mode (where one "chunk" is the entire input), large enough to keep the
// counter off the per-tuple path.
constexpr size_t kProgressStride = 2048;

// Live progress state, published from the calling thread only. Counters
// are cumulative across the run; gauges reflect the latest chunk.
struct LiveProgress {
  Counter* rows = nullptr;
  Gauge* chunk = nullptr;
  Gauge* resident = nullptr;
  Gauge* peak_resident = nullptr;
  Gauge* budget = nullptr;
  Gauge* spilled_blocks = nullptr;
  Gauge* spill_file = nullptr;
  Gauge* input_bytes = nullptr;
  size_t pending_rows = 0;

  explicit LiveProgress(MetricsRegistry* registry) {
    rows = registry->GetCounter("fixrep.progress.rows");
    chunk = registry->GetGauge("fixrep.progress.chunk");
    resident = registry->GetGauge("fixrep.progress.resident_bytes");
    peak_resident = registry->GetGauge("fixrep.progress.peak_resident_bytes");
    budget = registry->GetGauge("fixrep.progress.budget_bytes");
    spilled_blocks = registry->GetGauge("fixrep.progress.spilled_blocks");
    spill_file = registry->GetGauge("fixrep.progress.spill_file_bytes");
    input_bytes = registry->GetGauge("fixrep.progress.input_bytes_read");
  }

  void AddRows(size_t n) {
    pending_rows += n;
    if (pending_rows >= kProgressStride) FlushRows();
  }

  void FlushRows() {
    if (pending_rows == 0) return;
    rows->Add(pending_rows);
    pending_rows = 0;
  }

  void PublishResidency(const RowStore& store) {
    resident->Set(static_cast<int64_t>(store.resident_bytes()));
    peak_resident->Set(static_cast<int64_t>(store.peak_resident_bytes()));
    budget->Set(static_cast<int64_t>(store.effective_budget_bytes()));
    spilled_blocks->Set(static_cast<int64_t>(store.spilled_blocks()));
    spill_file->Set(static_cast<int64_t>(store.spill_file_bytes()));
  }
};

// Diagnostic rendering that survives column pruning: pruned cells are
// kNullValue in the table (FormatRow would show them empty), so their
// text comes from the sidecar. Failed tuples are restored to their
// original values before diagnostics are built, so this renders exactly
// what an unpruned run's FormatRow would.
std::string FormatRowWithSidecar(const Table& chunk,
                                 const ColumnSidecar* sidecar, size_t row) {
  if (sidecar == nullptr) return chunk.FormatRow(row);
  std::string out = "(";
  for (size_t a = 0; a < chunk.num_columns(); ++a) {
    if (a > 0) out += ", ";
    const AttrId attr = static_cast<AttrId>(a);
    out += sidecar->pruned(attr) ? sidecar->columns[a][row]
                                 : chunk.CellString(row, attr);
  }
  out += ")";
  return out;
}

}  // namespace

StreamingRepairSession::StreamingRepairSession(
    const RuleRepository* repo, const StreamingRepairOptions& options)
    : repo_(repo), options_(options) {
  FIXREP_CHECK(repo_ != nullptr);
  FIXREP_CHECK_GT(options_.chunk_rows, 0u);
}

StatusOr<StreamingRepairResult> StreamingRepairSession::Run(
    CsvChunkReader* reader, std::ostream& out) {
  FIXREP_CHECK(reader != nullptr);
  if (reader->schema()->arity() != repo_->arity()) {
    return Status::MalformedInput(
        "stream arity " + std::to_string(reader->schema()->arity()) +
        " does not match rule arity " + std::to_string(repo_->arity()));
  }
  FIXREP_TRACE_SPAN("streaming.run");
  const size_t threads = options_.repair.parallel.threads;
  const bool sharded = options_.shards > 0;
  const bool lenient = options_.repair.on_error != OnErrorPolicy::kAbort;
  const bool quarantining =
      options_.repair.on_error == OnErrorPolicy::kQuarantine &&
      options_.repair.quarantine != nullptr;
  FIXREP_LOG(Debug) << "streaming repair"
                    << Kv("chunk_rows", options_.chunk_rows)
                    << Kv("threads", threads)
                    << Kv("shards", options_.shards)
                    << Kv("rules", repo_->num_rules())
                    << Kv("budget_bytes", options_.memory_budget_bytes)
                    << Kv("prune", options_.prune_columns ? 1 : 0);

  // Serial runs carry the repairer (and the memo, in abort mode) across
  // chunks so chunking is invisible to memoization.
  const bool serial = threads == 1 && !sharded;
  const std::unique_ptr<RuleSourceHandle> serial_handle = repo_->MakeHandle();
  FastRepairer serial_repairer(serial_handle->source());
  MemoCache serial_memo(options_.repair.parallel.memo_capacity);
  if (serial && !lenient && options_.repair.parallel.use_memo) {
    serial_repairer.set_memo(&serial_memo);
  }
  serial_repairer.set_max_chase_steps(options_.repair.max_chase_steps);

  // Journaling scratch: the chunk's rule-attributed deltas (chunk-local
  // rows, from the engines' write logs) and its tuple diagnostics, both
  // cleared per chunk and written to the WAL at commit time.
  const bool journaling = options_.journal != nullptr;
  std::vector<CellRepair> chunk_deltas;
  std::vector<Diagnostic> chunk_diags;
  if (serial && journaling) serial_repairer.set_write_log(&chunk_deltas);

  // CSV-level quarantine journaling (WAL version >= 2): a capture sink
  // interposed around each ReadChunk sees exactly the reader
  // diagnostics one chunk produced, so they land in the chunk's WAL
  // records and resume can validate the re-read input against the log
  // instead of silently trusting it. Appending to a resumed version-1
  // log keeps the old record set (old scanners refuse the new type).
  const bool journal_csv =
      journaling && (options_.resume == nullptr ||
                     options_.resume->header.version >=
                         kCsvQuarantineWalVersion);
  VectorQuarantineSink csv_capture;

  WriteCsvHeader(*reader->schema(), out);

  StreamingRepairResult result;
  Table chunk = reader->MakeChunkTable();
  const bool spilling = options_.memory_budget_bytes > 0;
  if (spilling) {
    const Status enabled = chunk.EnableSpill(options_.memory_budget_bytes);
    if (!enabled.ok()) return enabled;
  } else {
    // Pre-size only sensible chunk sizes; a whole-file sentinel like
    // SIZE_MAX must not try to reserve.
    chunk.Reserve(std::min(options_.chunk_rows, size_t{1} << 20));
  }

  // Column pruning: intern only the attribute closure the rules can
  // touch; everything else rides in the sidecar as raw text.
  const AttrSet materialize =
      options_.prune_columns ? repo_->mentioned_attrs()
                             : AttrSet::All(repo_->arity());
  ColumnSidecar sidecar_storage;
  sidecar_storage.Init(repo_->arity(), materialize);
  ColumnSidecar* sidecar =
      options_.prune_columns && sidecar_storage.num_pruned() > 0
          ? &sidecar_storage
          : nullptr;
  result.columns_pruned = sidecar != nullptr ? sidecar->num_pruned() : 0;

  auto& registry = CurrentMetrics();
  LiveProgress progress(&registry);

  // Repairs chunk rows [begin, end) in the configured mode, accumulating
  // totals (and diagnostics at global row indices) into `result`.
  // `base_row` is the global index of chunk row 0.
  auto repair_range = [&](size_t begin, size_t end,
                          size_t base_row) -> Status {
    if (sharded) {
      // Content-routed engine: diagnostics come back at chunk-local rows
      // via a range sink and are rebased like the pooled lenient path.
      ShardedRepairOptions shard_options;
      shard_options.shards = options_.shards;
      shard_options.use_memo = options_.repair.parallel.use_memo;
      shard_options.memo_capacity = options_.repair.parallel.memo_capacity;
      shard_options.on_error = options_.repair.on_error;
      shard_options.max_chase_steps = options_.repair.max_chase_steps;
      if (journaling) shard_options.write_log = &chunk_deltas;
      VectorQuarantineSink range_sink;
      if (lenient && quarantining) shard_options.quarantine = &range_sink;
      const ShardedRepairResult range_result =
          ShardedRepairRows(*repo_, &chunk, begin, end, shard_options);
      progress.AddRows(end - begin);
      result.cells_changed += range_result.stats.cells_changed;
      result.tuples_quarantined += range_result.tuples_quarantined;
      for (const Diagnostic& d : range_sink.diagnostics()) {
        Diagnostic rebased{base_row + d.line, d.code, d.message,
                           sidecar == nullptr
                               ? d.raw_text
                               : FormatRowWithSidecar(chunk, sidecar, d.line)};
        options_.repair.quarantine->Add(rebased);
        if (journaling) chunk_diags.push_back(std::move(rebased));
      }
      return Status::Ok();
    }
    if (serial && !lenient) {
      // Row-group driver in progress-stride sub-ranges: batched probes
      // inside, live fixrep.progress.rows updates between.
      const size_t cells_before = serial_repairer.stats().cells_changed;
      for (size_t sub = begin; sub < end; sub += kProgressStride) {
        const size_t sub_end = std::min(end, sub + kProgressStride);
        serial_repairer.RepairRows(&chunk, sub, sub_end);
        progress.AddRows(sub_end - sub);
      }
      result.cells_changed +=
          serial_repairer.stats().cells_changed - cells_before;
      return Status::Ok();
    }
    if (serial) {
      // Serial lenient: isolate each tuple, reporting failures at their
      // global output-row index so diagnostics match a whole-table run.
      size_t failed = 0;
      for (size_t r = begin; r < end; ++r) {
        size_t changed = 0;
        serial_repairer.set_write_log_row(r);
        const Status status =
            serial_repairer.TryRepairTuple(chunk.WriteRow(r), &changed);
        progress.AddRows(1);
        if (status.ok()) {
          result.cells_changed += changed;
          continue;
        }
        ++failed;
        if (quarantining) {
          Diagnostic diagnostic{base_row + r, status.code(), status.message(),
                                FormatRowWithSidecar(chunk, sidecar, r)};
          options_.repair.quarantine->Add(diagnostic);
          if (journaling) chunk_diags.push_back(std::move(diagnostic));
        }
      }
      if (failed > 0) {
        registry.GetCounter("fixrep.quarantine.tuples")->Add(failed);
      }
      result.tuples_quarantined += failed;
      return Status::Ok();
    }
    if (!lenient) {
      ParallelRepairOptions parallel_options = options_.repair.parallel;
      if (journaling) parallel_options.write_log = &chunk_deltas;
      result.cells_changed +=
          ParallelRepairRows(*repo_, &chunk, begin, end, parallel_options)
              .cells_changed;
      progress.AddRows(end - begin);
      return Status::Ok();
    }
    // Parallel lenient: collect per-range diagnostics locally, then
    // rebase their chunk-local rows onto the global output offset (and,
    // when pruning, re-render raw text through the sidecar — failed
    // tuples are restored, so this reproduces the original values).
    VectorQuarantineSink range_sink;
    LenientRepairOptions lenient_options = options_.repair;
    lenient_options.quarantine = quarantining ? &range_sink : nullptr;
    if (journaling) lenient_options.write_log = &chunk_deltas;
    const LenientRepairResult range_result = ParallelRepairRowsLenient(
        *repo_, &chunk, begin, end, lenient_options);
    progress.AddRows(end - begin);
    result.cells_changed += range_result.stats.cells_changed;
    result.tuples_quarantined += range_result.tuples_quarantined;
    for (const Diagnostic& d : range_sink.diagnostics()) {
      Diagnostic rebased{
          base_row + d.line, d.code, d.message,
          sidecar == nullptr ? d.raw_text
                             : FormatRowWithSidecar(chunk, sidecar, d.line)};
      options_.repair.quarantine->Add(rebased);
      if (journaling) chunk_diags.push_back(std::move(rebased));
    }
    return Status::Ok();
  };

  // Crash recovery: fast-forward over the durable chunks of a previous
  // run. Each is re-read from the input (the reader regenerates any
  // CSV-level diagnostics deterministically), its journaled deltas are
  // applied by interning the recorded strings — no re-chase — its
  // journaled tuple diagnostics are forwarded, and its rows re-emitted.
  // Byte-identical to the uninterrupted run because the chase is a pure
  // per-tuple function: same input chunk + same deltas = same rows.
  if (options_.resume != nullptr) {
    // Version >= 2 logs carry the reader diagnostics each chunk
    // produced: re-render them into a capture sink, refuse on any
    // disagreement with the log (the input changed since the journaled
    // run), and forward the journaled records — never the silently
    // trusted re-rendering — to the live sink. Version-1 logs keep the
    // historical behavior (re-rendered diagnostics flow straight
    // through).
    const bool validate_csv =
        options_.resume->header.version >= kCsvQuarantineWalVersion;
    for (const WalChunk& durable : options_.resume->chunks) {
      chunk.Clear();
      if (sidecar != nullptr) sidecar->Clear();
      QuarantineSink* live_sink = nullptr;
      if (validate_csv) {
        csv_capture.Clear();
        live_sink = reader->SwapQuarantine(&csv_capture);
      }
      StatusOr<size_t> read =
          reader->ReadChunk(&chunk, options_.chunk_rows, sidecar);
      if (validate_csv) {
        reader->SwapQuarantine(live_sink);
      }
      if (!read.ok()) return read.status();
      if (validate_csv) {
        if (csv_capture.diagnostics() != durable.csv_quarantined) {
          return Status::MalformedInput(
              "resume divergence at chunk " +
              std::to_string(durable.chunk_index) + ": WAL journaled " +
              std::to_string(durable.csv_quarantined.size()) +
              " CSV-level diagnostics, re-reading the input rendered " +
              std::to_string(csv_capture.size()) +
              " (or their contents differ) — was the input modified since "
              "the journaled run?");
        }
        if (live_sink != nullptr) {
          for (const Diagnostic& diagnostic : durable.csv_quarantined) {
            live_sink->Add(diagnostic);
          }
        }
      }
      if (read.value() != durable.rows ||
          durable.base_row != result.rows_emitted) {
        return Status::MalformedInput(
            "resume divergence at chunk " +
            std::to_string(durable.chunk_index) + ": WAL recorded " +
            std::to_string(durable.rows) + " rows at base " +
            std::to_string(durable.base_row) + ", re-reading gave " +
            std::to_string(read.value()) + " at base " +
            std::to_string(result.rows_emitted) +
            " — was the input modified since the journaled run?");
      }
      ValuePool& pool = *chunk.pool_ptr();
      for (const WalCellDelta& delta : durable.deltas) {
        if (delta.row >= chunk.num_rows() ||
            delta.attr >= chunk.num_columns()) {
          return Status::MalformedInput(
              "resume divergence: journaled delta addresses row " +
              std::to_string(delta.row) + " attr " +
              std::to_string(delta.attr) + " outside chunk " +
              std::to_string(durable.chunk_index));
        }
        chunk.WriteCell(static_cast<size_t>(delta.row),
                        static_cast<AttrId>(delta.attr),
                        pool.Intern(delta.new_value));
      }
      if (quarantining) {
        for (const Diagnostic& diagnostic : durable.quarantined) {
          options_.repair.quarantine->Add(diagnostic);
        }
      }
      if (durable.tuples_quarantined > 0) {
        registry.GetCounter("fixrep.quarantine.tuples")
            ->Add(durable.tuples_quarantined);
      }
      if (sidecar != nullptr) {
        WriteCsvRowsPruned(chunk, *sidecar, out);
      } else {
        WriteCsvRows(chunk, out);
      }
      ++result.chunks;
      result.rows_emitted += chunk.num_rows();
      result.cells_changed += durable.cells_changed;
      result.tuples_quarantined += durable.tuples_quarantined;
      progress.AddRows(chunk.num_rows());
      progress.chunk->Set(static_cast<int64_t>(result.chunks));
    }
    progress.FlushRows();
    registry.GetCounter("fixrep.wal.chunks_replayed")->Add(result.chunks);
    registry.GetCounter("fixrep.wal.rows_replayed")->Add(result.rows_emitted);
    FIXREP_LOG(Info) << "resumed from WAL"
                     << Kv("chunks_replayed", result.chunks)
                     << Kv("rows_replayed", result.rows_emitted);
    if (TelemetryJournal* journal = GetGlobalJournal()) {
      TelemetryEvent event("resume");
      event.Set("chunks_replayed", static_cast<uint64_t>(result.chunks))
          .Set("rows_replayed", static_cast<uint64_t>(result.rows_emitted))
          .Set("cells_changed_replayed",
               static_cast<uint64_t>(result.cells_changed))
          .Set("durable_bytes", options_.resume->durable_bytes);
      journal->Append(event);
    }
  }

  while (true) {
    chunk.Clear();
    if (sidecar != nullptr) sidecar->Clear();
    QuarantineSink* live_sink = nullptr;
    if (journal_csv) {
      csv_capture.Clear();
      live_sink = reader->SwapQuarantine(&csv_capture);
    }
    StatusOr<size_t> read =
        reader->ReadChunk(&chunk, options_.chunk_rows, sidecar);
    if (journal_csv) {
      reader->SwapQuarantine(live_sink);
      // The capture must be invisible to the caller's sink.
      if (live_sink != nullptr) {
        for (const Diagnostic& diagnostic : csv_capture.diagnostics()) {
          live_sink->Add(diagnostic);
        }
      }
    }
    if (!read.ok()) return read.status();
    if (read.value() == 0 && reader->at_end()) break;
    ++result.chunks;
    const size_t chunk_cells_before = result.cells_changed;
    const size_t chunk_quarantined_before = result.tuples_quarantined;
    chunk_deltas.clear();
    chunk_diags.clear();
    const uint64_t chunk_start_ns = TraceNowNanos();
    progress.chunk->Set(static_cast<int64_t>(result.chunks));
    progress.input_bytes->Set(static_cast<int64_t>(reader->bytes_read()));

    if (!serial && chunk.store().spilling()) {
      // Pooled workers must never race a block state transition, so the
      // parallel engines drive a spilling chunk block-wise: pin a block,
      // make it writable once, repair exactly its rows, unpin. Worker
      // row views then live entirely inside an addressable, pinned
      // block.
      RowStore& store = chunk.store();
      for (size_t b = 0; b < store.num_blocks(); ++b) {
        store.PinBlock(b);
        store.MakeBlockWritable(b);
        const size_t begin = b * RowStore::kRowsPerBlock;
        const Status status = repair_range(
            begin, begin + store.rows_in_block(b), result.rows_emitted);
        store.UnpinBlock(b);
        if (!status.ok()) return status;
        // Block-granularity residency so a scrape mid-chunk (one chunk
        // may be the whole input in spill mode) sees live values.
        progress.FlushRows();
        progress.PublishResidency(store);
      }
    } else {
      const Status status =
          repair_range(0, chunk.num_rows(), result.rows_emitted);
      if (!status.ok()) return status;
    }

    // Commit the chunk to the WAL BEFORE emitting its rows: once a row
    // is in the output stream it is covered by a durable chunk, so a
    // crash at any point resumes to byte-identical output.
    if (journaling) {
      ChunkJournal& journal = *options_.journal;
      Status journaled = journal.BeginChunk(
          result.chunks, result.rows_emitted, chunk.num_rows());
      const ValuePool& pool = *chunk.pool_ptr();
      for (const CellRepair& repair : chunk_deltas) {
        if (!journaled.ok()) break;
        WalCellDelta delta;
        delta.row = repair.row;
        delta.attr = static_cast<uint32_t>(repair.attr);
        delta.old_is_null = repair.old_value == kNullValue;
        if (!delta.old_is_null) {
          delta.old_value = pool.GetString(repair.old_value);
        }
        delta.new_value = pool.GetString(repair.new_value);
        delta.rule_index = repair.rule_index;
        journaled = journal.AddDelta(delta);
      }
      if (journal_csv) {
        for (const Diagnostic& diagnostic : csv_capture.diagnostics()) {
          if (!journaled.ok()) break;
          journaled = journal.AddCsvQuarantine(diagnostic);
        }
      }
      for (const Diagnostic& diagnostic : chunk_diags) {
        if (!journaled.ok()) break;
        journaled = journal.AddQuarantine(diagnostic);
      }
      if (journaled.ok()) {
        journaled = journal.Commit(
            result.chunks, chunk.num_rows(),
            result.cells_changed - chunk_cells_before,
            result.tuples_quarantined - chunk_quarantined_before);
      }
      if (!journaled.ok()) return journaled.WithContext("WAL journaling");
      registry.GetCounter("fixrep.wal.chunks_committed")->Add(1);
      registry.GetCounter("fixrep.wal.deltas_journaled")
          ->Add(chunk_deltas.size());
      if (TelemetryJournal* telemetry = GetGlobalJournal()) {
        TelemetryEvent event("wal_commit");
        event.Set("chunk", static_cast<uint64_t>(result.chunks))
            .Set("deltas", static_cast<uint64_t>(chunk_deltas.size()))
            .Set("quarantined", static_cast<uint64_t>(chunk_diags.size()))
            .Set("wal_bytes", journal.appended_bytes())
            .Set("fsyncs", journal.fsync_count());
        telemetry->Append(event);
      }
    }

    if (sidecar != nullptr) {
      WriteCsvRowsPruned(chunk, *sidecar, out);
    } else {
      WriteCsvRows(chunk, out);
    }
    result.rows_emitted += chunk.num_rows();
    result.peak_resident_bytes =
        std::max(result.peak_resident_bytes,
                 chunk.store().peak_resident_bytes());
    progress.FlushRows();
    progress.PublishResidency(chunk.store());
    if (TelemetryJournal* journal = GetGlobalJournal()) {
      const uint64_t duration_ns = TraceNowNanos() - chunk_start_ns;
      TelemetryEvent event("chunk");
      event.Set("index", static_cast<uint64_t>(result.chunks))
          .Set("rows", static_cast<uint64_t>(chunk.num_rows()))
          .Set("rows_total", static_cast<uint64_t>(result.rows_emitted))
          .Set("cells_changed_total",
               static_cast<uint64_t>(result.cells_changed))
          .Set("duration_ns", duration_ns)
          .Set("resident_bytes",
               static_cast<uint64_t>(chunk.store().resident_bytes()))
          .Set("peak_resident_bytes",
               static_cast<uint64_t>(chunk.store().peak_resident_bytes()))
          .Set("budget_bytes",
               static_cast<uint64_t>(chunk.store().effective_budget_bytes()))
          .Set("spilled_blocks",
               static_cast<uint64_t>(chunk.store().spilled_blocks()));
      if (duration_ns > 0) {
        event.Set("rows_per_s", static_cast<double>(chunk.num_rows()) * 1e9 /
                                    static_cast<double>(duration_ns));
      }
      journal->Append(event);
    }
  }

  if (serial) serial_repairer.FlushMetrics();
  progress.FlushRows();
  registry.GetCounter("fixrep.streaming.chunks")->Add(result.chunks);
  registry.GetCounter("fixrep.streaming.rows")->Add(result.rows_emitted);
  if (sidecar != nullptr) {
    registry.GetCounter("fixrep.streaming.columns_pruned")
        ->Add(result.columns_pruned);
  }
  FIXREP_LOG(Debug) << "streaming repair done"
                    << Kv("rows", result.rows_emitted)
                    << Kv("chunks", result.chunks)
                    << Kv("cells_changed", result.cells_changed)
                    << Kv("quarantined", result.tuples_quarantined)
                    << Kv("peak_resident", result.peak_resident_bytes);
  return result;
}

}  // namespace fixrep
