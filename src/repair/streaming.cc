#include "repair/streaming.h"

#include <ostream>
#include <string>
#include <utility>

#include "common/log.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "repair/lrepair.h"

namespace fixrep {

StreamingRepairSession::StreamingRepairSession(
    const CompiledRuleIndex* index, const StreamingRepairOptions& options)
    : index_(index), options_(options) {
  FIXREP_CHECK(index_ != nullptr);
  FIXREP_CHECK_GT(options_.chunk_rows, 0u);
}

StatusOr<StreamingRepairResult> StreamingRepairSession::Run(
    CsvChunkReader* reader, std::ostream& out) {
  FIXREP_CHECK(reader != nullptr);
  if (reader->schema()->arity() != index_->arity()) {
    return Status::MalformedInput(
        "stream arity " + std::to_string(reader->schema()->arity()) +
        " does not match rule arity " + std::to_string(index_->arity()));
  }
  FIXREP_TRACE_SPAN("streaming.run");
  const bool lenient = options_.on_error != OnErrorPolicy::kAbort;
  const bool quarantining =
      options_.on_error == OnErrorPolicy::kQuarantine &&
      options_.quarantine != nullptr;
  FIXREP_LOG(Debug) << "streaming repair"
                    << Kv("chunk_rows", options_.chunk_rows)
                    << Kv("threads", options_.threads)
                    << Kv("rules", index_->num_rules());

  // Serial runs carry the repairer (and the memo, in abort mode) across
  // chunks so chunking is invisible to memoization.
  const bool serial = options_.threads == 1;
  FastRepairer serial_repairer(index_);
  MemoCache serial_memo(options_.memo_capacity);
  if (serial && !lenient && options_.use_memo) {
    serial_repairer.set_memo(&serial_memo);
  }
  serial_repairer.set_max_chase_steps(options_.max_chase_steps);

  WriteCsvHeader(*reader->schema(), out);

  StreamingRepairResult result;
  Table chunk = reader->MakeChunkTable();
  chunk.Reserve(options_.chunk_rows);
  auto& registry = MetricsRegistry::Global();
  while (true) {
    chunk.Clear();
    StatusOr<size_t> read = reader->ReadChunk(&chunk, options_.chunk_rows);
    if (!read.ok()) return read.status();
    if (read.value() == 0 && reader->at_end()) break;
    ++result.chunks;

    if (serial && !lenient) {
      for (size_t r = 0; r < chunk.num_rows(); ++r) {
        result.cells_changed += serial_repairer.RepairTuple(chunk.WriteRow(r));
      }
    } else if (serial) {
      // Serial lenient: isolate each tuple, reporting failures at their
      // global output-row index so diagnostics match a whole-table run.
      size_t failed = 0;
      for (size_t r = 0; r < chunk.num_rows(); ++r) {
        size_t changed = 0;
        const Status status =
            serial_repairer.TryRepairTuple(chunk.WriteRow(r), &changed);
        if (status.ok()) {
          result.cells_changed += changed;
          continue;
        }
        ++failed;
        if (quarantining) {
          options_.quarantine->Add(
              Diagnostic{result.rows_emitted + r, status.code(),
                         status.message(), chunk.FormatRow(r)});
        }
      }
      if (failed > 0) {
        registry.GetCounter("fixrep.quarantine.tuples")->Add(failed);
      }
      result.tuples_quarantined += failed;
    } else if (!lenient) {
      ParallelRepairOptions parallel;
      parallel.threads = options_.threads;
      parallel.use_memo = options_.use_memo;
      parallel.memo_capacity = options_.memo_capacity;
      result.cells_changed +=
          ParallelRepairTable(*index_, &chunk, parallel).cells_changed;
    } else {
      // Parallel lenient: collect per-chunk diagnostics locally, then
      // rebase their chunk-local rows onto the global output offset.
      VectorQuarantineSink chunk_sink;
      LenientRepairOptions lenient_options;
      lenient_options.parallel.threads = options_.threads;
      lenient_options.on_error = options_.on_error;
      lenient_options.quarantine = quarantining ? &chunk_sink : nullptr;
      lenient_options.max_chase_steps = options_.max_chase_steps;
      const LenientRepairResult chunk_result =
          ParallelRepairTableLenient(*index_, &chunk, lenient_options);
      result.cells_changed += chunk_result.stats.cells_changed;
      result.tuples_quarantined += chunk_result.tuples_quarantined;
      for (const Diagnostic& d : chunk_sink.diagnostics()) {
        options_.quarantine->Add(Diagnostic{
            result.rows_emitted + d.line, d.code, d.message, d.raw_text});
      }
    }

    WriteCsvRows(chunk, out);
    result.rows_emitted += chunk.num_rows();
  }

  if (serial) serial_repairer.FlushMetrics();
  registry.GetCounter("fixrep.streaming.chunks")->Add(result.chunks);
  registry.GetCounter("fixrep.streaming.rows")->Add(result.rows_emitted);
  FIXREP_LOG(Debug) << "streaming repair done"
                    << Kv("rows", result.rows_emitted)
                    << Kv("chunks", result.chunks)
                    << Kv("cells_changed", result.cells_changed)
                    << Kv("quarantined", result.tuples_quarantined);
  return result;
}

}  // namespace fixrep
