#ifndef FIXREP_REPAIR_STREAMING_H_
#define FIXREP_REPAIR_STREAMING_H_

#include <cstddef>
#include <iosfwd>

#include "common/quarantine.h"
#include "common/status.h"
#include "relation/csv.h"
#include "repair/memo_cache.h"
#include "repair/parallel.h"
#include "repair/recovery.h"
#include "repair/rule_index.h"

namespace fixrep {

// Chunked streaming repair: CSV in, repaired CSV out, with peak memory
// proportional to one chunk instead of the whole relation.
//
// New call sites should go through RepairSession::RepairStream
// (repair/session.h), which forwards here; this class stays public as
// the engine layer for callers that manage their own rule backend (any
// RuleRepository — the in-RAM CompiledRuleIndex or a mapped RuleDict).
//
// The pipeline (docs/storage.md) is
//
//   CsvChunkReader --chunk--> repair in place --rows--> std::ostream
//
// One chunk Table (its flat RowStore reused across chunks via Clear())
// holds at most `chunk_rows` rows at a time; repaired rows are emitted
// before the next chunk is read. Because fixing-rule repair is per tuple,
// chunking cannot change the output: the repaired stream is bit-identical
// to repairing the whole table in memory and writing it out, for every
// chunk size, engine width, and error policy (streaming_test).
//
// Serial runs keep one FastRepairer — and, in abort mode, one MemoCache —
// alive across all chunks, so memoization works across chunk boundaries
// exactly as it does across rows of a whole-table run. Parallel runs
// repair each chunk with the pooled engine over the shared index.
//
// Two out-of-core knobs stack on top of chunking:
// * memory_budget_bytes > 0 puts the chunk table's RowStore in spill
//   mode (relation/row_store.h): cell blocks past the resident budget
//   live in a temp-backed mmap file. Parallel runs then repair
//   block-wise — pin a block, repair exactly its rows, unpin — so
//   worker views never see a block transition.
// * prune_columns interns only the attributes some rule mentions
//   (CompiledRuleIndex::mentioned_attrs); every other column's raw CSV
//   text bypasses the ValuePool via a ColumnSidecar and is re-emitted
//   verbatim. The chase never reads or writes an unmentioned column, so
//   output stays byte-identical to the unpruned run.
struct StreamingRepairOptions {
  // Rows per chunk; the peak-memory knob. 64K rows * arity * 4 bytes of
  // cells plus the interned strings.
  size_t chunk_rows = size_t{64} * 1024;
  // Engine configuration, composed from the batch layer instead of
  // duplicating its fields:
  // * repair.parallel.threads: 1 = serial (the default here); 0 or >1 =
  //   pooled parallel per chunk with ParallelRepairOptions semantics.
  // * repair.parallel.use_memo/memo_capacity: abort mode only (the
  //   lenient path never memoizes, matching ParallelRepairTableLenient).
  // * repair.on_error: unlike the batch lenient path, kAbort is allowed
  //   and is the streaming default — fail fast on the first bad tuple.
  // * repair.quarantine: one Diagnostic per failed *tuple* when
  //   on_error is kQuarantine; Diagnostic::line is the global
  //   output-row index (the same index a whole-table run would report).
  //   Malformed *CSV records* flow through the CsvChunkReader's own
  //   sink instead.
  // * repair.max_chase_steps: per-tuple chase budget in lenient mode.
  LenientRepairOptions repair{.parallel = {.threads = 1},
                              .on_error = OnErrorPolicy::kAbort};
  // > 0: repair each chunk (or pinned spill block) with the
  // content-routed sharded engine (repair/sharded.h) over this many
  // shards instead of the position-claiming pooled engine;
  // repair.parallel.threads is then ignored. Output is bit-identical
  // either way.
  size_t shards = 0;
  // > 0: spill chunk cell blocks past this many resident bytes to a
  // temp-backed file (see class comment). 0 = fully in-memory chunks.
  size_t memory_budget_bytes = 0;
  // Intern only rule-mentioned columns; carry the rest as raw text.
  bool prune_columns = false;

  // --- durability (docs/durability.md) ---
  // Non-null: journal each chunk to this WAL as chunk_begin /
  // cell_delta* / quarantine* / chunk_commit, committing (group fsync)
  // BEFORE the chunk's rows are emitted, so a crash anywhere leaves
  // every emitted row covered by a durable chunk. Borrowed.
  ChunkJournal* journal = nullptr;
  // Non-null: fast-forward over this scanned run's committed chunks
  // before repairing — each is re-read from the input, its recorded
  // deltas and diagnostics replayed, and its rows re-emitted, so resumed
  // output is byte-identical to an uninterrupted run. The caller has
  // already validated the header against this run's configuration
  // (ValidateWalHeader) and reopened `journal` with ChunkJournal::Resume.
  const RecoveredRun* resume = nullptr;
};

struct StreamingRepairResult {
  size_t rows_emitted = 0;
  size_t chunks = 0;
  size_t cells_changed = 0;
  size_t tuples_quarantined = 0;
  // High-water mark of resident chunk-store bytes (spill mode only; 0
  // otherwise). The number the memory budget governs.
  size_t peak_resident_bytes = 0;
  // Columns never interned thanks to prune_columns.
  size_t columns_pruned = 0;
};

class StreamingRepairSession {
 public:
  // The repository is borrowed and must outlive the session.
  explicit StreamingRepairSession(const RuleRepository* repo,
                                  const StreamingRepairOptions& options = {});

  // Drains `reader` chunk by chunk, writing the CSV header and every
  // repaired row to `out`. Returns the totals, or the first error in
  // abort mode. The reader's schema must match the rules' arity.
  StatusOr<StreamingRepairResult> Run(CsvChunkReader* reader,
                                      std::ostream& out);

 private:
  const RuleRepository* repo_;
  StreamingRepairOptions options_;
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_STREAMING_H_
