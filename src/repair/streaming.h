#ifndef FIXREP_REPAIR_STREAMING_H_
#define FIXREP_REPAIR_STREAMING_H_

#include <cstddef>
#include <iosfwd>

#include "common/quarantine.h"
#include "common/status.h"
#include "relation/csv.h"
#include "repair/memo_cache.h"
#include "repair/parallel.h"
#include "repair/rule_index.h"

namespace fixrep {

// Chunked streaming repair: CSV in, repaired CSV out, with peak memory
// proportional to one chunk instead of the whole relation.
//
// The pipeline (docs/storage.md) is
//
//   CsvChunkReader --chunk--> repair in place --rows--> std::ostream
//
// One chunk Table (its flat RowStore reused across chunks via Clear())
// holds at most `chunk_rows` rows at a time; repaired rows are emitted
// before the next chunk is read. Because fixing-rule repair is per tuple,
// chunking cannot change the output: the repaired stream is bit-identical
// to repairing the whole table in memory and writing it out, for every
// chunk size, engine width, and error policy (streaming_test).
//
// Serial runs keep one FastRepairer — and, in abort mode, one MemoCache —
// alive across all chunks, so memoization works across chunk boundaries
// exactly as it does across rows of a whole-table run. Parallel runs
// repair each chunk with the pooled engine over the shared index.
struct StreamingRepairOptions {
  // Rows per chunk; the peak-memory knob. 64K rows * arity * 4 bytes of
  // cells plus the interned strings.
  size_t chunk_rows = size_t{64} * 1024;
  // 1 = serial (the default); 0 or >1 = pooled parallel per chunk with
  // ParallelRepairOptions::threads semantics.
  size_t threads = 1;
  // Tuple-signature memoization (abort mode only; the lenient path never
  // memoizes, matching ParallelRepairTableLenient).
  bool use_memo = true;
  size_t memo_capacity = MemoCache::kDefaultCapacity;
  // kAbort fails fast on a malformed record; kSkip/kQuarantine drop
  // failing tuples (restored to their original values) and keep going.
  OnErrorPolicy on_error = OnErrorPolicy::kAbort;
  // Receives one Diagnostic per failed *tuple* when on_error is
  // kQuarantine. Diagnostic::line is the global output-row index (the
  // same index a whole-table run would report); malformed *CSV records*
  // flow through the CsvChunkReader's own sink instead.
  QuarantineSink* quarantine = nullptr;
  // Per-tuple chase budget in lenient mode (0 = unlimited).
  size_t max_chase_steps = 0;
};

struct StreamingRepairResult {
  size_t rows_emitted = 0;
  size_t chunks = 0;
  size_t cells_changed = 0;
  size_t tuples_quarantined = 0;
};

class StreamingRepairSession {
 public:
  // The index is borrowed and must outlive the session.
  explicit StreamingRepairSession(const CompiledRuleIndex* index,
                                  const StreamingRepairOptions& options = {});

  // Drains `reader` chunk by chunk, writing the CSV header and every
  // repaired row to `out`. Returns the totals, or the first error in
  // abort mode. The reader's schema must match the index's arity.
  StatusOr<StreamingRepairResult> Run(CsvChunkReader* reader,
                                      std::ostream& out);

 private:
  const CompiledRuleIndex* index_;
  StreamingRepairOptions options_;
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_STREAMING_H_
