#ifndef FIXREP_REPAIR_INCREMENTAL_H_
#define FIXREP_REPAIR_INCREMENTAL_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "relation/table.h"
#include "repair/lrepair.h"
#include "rules/rule_set.h"
#include "rules/rule_source.h"

namespace fixrep {

// Incremental repair session over a live table.
//
// Fixing-rule repair is per tuple, so maintenance under updates is
// local: when a row is inserted or a cell is edited, only that row needs
// re-chasing. The session owns the table, repairs everything once at
// construction, and keeps it repaired across mutations — the
// database-side counterpart of the repair-at-entry monitoring use case.
//
// Note the non-idempotence caveat (Section 3.2 / RepairSemanticsTest):
// a re-chase after an edit starts from a fresh assured set, so cells the
// previous chase froze may be rewritten again. That is the defined
// semantics: each mutation opens a new repairing process for its row.
class IncrementalRepairer {
 public:
  // Takes ownership of `table` (moved in) and repairs all rows.
  IncrementalRepairer(const RuleSet* rules, Table table);

  // Repository-backed variant (in-RAM index or mapped dictionary, which
  // must be bound to the table's pool and outlive the session).
  IncrementalRepairer(const RuleRepository* repo, Table table);

  const Table& table() const { return table_; }

  // Inserts a tuple (repairing it first); returns its row index.
  size_t Insert(Tuple row);

  // Bulk insert: appends every tuple, then repairs the appended range
  // through the row-group driver (one batched probe per group instead of
  // per-tuple init). Bit-identical to Insert called once per row —
  // repair is per tuple, so batching changes the probe schedule only.
  // Returns the row index of the first inserted tuple.
  size_t InsertBatch(std::vector<Tuple> rows);

  // Applies a user edit to one cell and re-chases that row. The edited
  // value participates in the chase like any other dirty value (it may
  // itself be rewritten if a rule proves it wrong). Returns the number
  // of cells the re-chase changed (not counting the edit itself).
  size_t UpdateCell(size_t row, AttrId attr, ValueId value);

  // Cumulative stats across the initial repair and all mutations.
  const RepairStats& stats() const { return repairer_.stats(); }

 private:
  Table table_;
  // Present on the repository-backed path only; declared before the
  // repairer, whose source view borrows the handle's scratch.
  std::unique_ptr<RuleSourceHandle> handle_;
  FastRepairer repairer_;
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_INCREMENTAL_H_
