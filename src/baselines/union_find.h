#ifndef FIXREP_BASELINES_UNION_FIND_H_
#define FIXREP_BASELINES_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

namespace fixrep {

// Disjoint-set forest with path halving and union by size; used by the
// Heu baseline to build equivalence classes of cells.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  // Unions the sets of a and b; returns the new root.
  size_t Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return ra;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return ra;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace fixrep

#endif  // FIXREP_BASELINES_UNION_FIND_H_
