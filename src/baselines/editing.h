#ifndef FIXREP_BASELINES_EDITING_H_
#define FIXREP_BASELINES_EDITING_H_

#include "relation/table.h"
#include "repair/repair_stats.h"
#include "rules/rule_set.h"

namespace fixrep {

// Automated editing rules (Exp-2(d)): the paper simulates editing rules
// (Fan et al., VLDB J.'12) by stripping the negative patterns off fixing
// rules and answering every user prompt with "yes". A rule then fires on
// a bare evidence match and overwrites the target with the fact — no
// negative patterns guard it, so errors sitting in the evidence
// attributes cause wrong writes, which is exactly the effect Fig. 12(b)
// measures.
//
// Application still honours assured attributes so the process terminates
// and never rewrites a cell twice.
class AutoEditRepairer {
 public:
  // Uses only the evidence patterns and facts of `rules`; the negative
  // patterns are ignored by construction.
  explicit AutoEditRepairer(const RuleSet* rules);

  // Returns the number of cells changed (writes that keep the current
  // value are fired but not counted).
  size_t RepairTuple(TupleSpan t);

  void RepairTable(Table* table);

  const RepairStats& stats() const { return stats_; }

 private:
  const RuleSet* rules_;
  RepairStats stats_;
};

}  // namespace fixrep

#endif  // FIXREP_BASELINES_EDITING_H_
