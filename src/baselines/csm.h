#ifndef FIXREP_BASELINES_CSM_H_
#define FIXREP_BASELINES_CSM_H_

#include <cstdint>
#include <vector>

#include "baselines/heu.h"
#include "deps/fd.h"
#include "relation/table.h"

namespace fixrep {

struct CsmOptions {
  uint64_t seed = 0xc5a1;
  // Bound on violation-fixing rounds; new violations caused by a fix are
  // handled in later rounds.
  size_t max_rounds = 16;
  // Probability of repairing a violating tuple by mutating one LHS cell
  // to a fresh value (splitting the group) rather than equating its RHS
  // cell with the group's witness value.
  double lhs_change_probability = 0.05;
};

// Csm: sampling from cardinality-set-minimal repairs (Beskales et al.,
// PVLDB'10), the paper's second comparison baseline. A repair is sampled
// by visiting violations in random order and resolving each with a
// minimal cell change: either set the deviating tuple's RHS cell to a
// randomly chosen witness tuple's value, or (with small probability, the
// "change a LHS cell to a variable" move of set-minimal repairs) rewrite
// one LHS cell to a fresh value, detaching the tuple from the group.
// Cells are changed at most once per run (set-minimality): a frozen cell
// forces the alternative move.
class CsmRepairer {
 public:
  CsmRepairer(std::vector<FunctionalDependency> fds, CsmOptions options = {});

  // Samples one repair of `table` in place.
  BaselineResult Repair(Table* table) const;

 private:
  std::vector<FunctionalDependency> fds_;  // normalized to single RHS
  CsmOptions options_;
};

}  // namespace fixrep

#endif  // FIXREP_BASELINES_CSM_H_
