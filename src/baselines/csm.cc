#include "baselines/csm.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "deps/violation.h"

namespace fixrep {

CsmRepairer::CsmRepairer(std::vector<FunctionalDependency> fds,
                         CsmOptions options)
    : fds_(NormalizeToSingleRhs(fds)), options_(options) {
  FIXREP_CHECK(!fds_.empty());
}

BaselineResult CsmRepairer::Repair(Table* table) const {
  BaselineResult result;
  Rng rng(options_.seed);
  const size_t arity = table->num_columns();
  auto cell_id = [arity](size_t row, AttrId attr) {
    return row * arity + static_cast<size_t>(attr);
  };
  std::unordered_set<size_t> frozen;  // cells already changed this run
  size_t fresh_counter = 0;

  auto set_fresh = [&](size_t row, AttrId attr) {
    const ValueId fresh = table->pool().Intern(
        "__csm_fresh_" + std::to_string(fresh_counter++));
    table->WriteCell(row, attr, fresh);
  };

  for (size_t round = 0; round < options_.max_rounds; ++round) {
    ++result.passes;
    size_t changed_this_round = 0;
    std::vector<const FunctionalDependency*> fd_order;
    for (const auto& fd : fds_) fd_order.push_back(&fd);
    rng.Shuffle(&fd_order);
    for (const FunctionalDependency* fd : fd_order) {
      const AttrId rhs = fd->rhs[0];
      auto groups = DetectViolations(*table, *fd);
      rng.Shuffle(&groups);
      for (const auto& group : groups) {
        // Pick a random witness row; every other row must be made to
        // agree with it (or leave the group).
        const size_t witness = group.rows[rng.Uniform(group.rows.size())];
        const ValueId witness_value = table->cell(witness, rhs);
        for (const size_t row : group.rows) {
          if (table->cell(row, rhs) == witness_value) continue;
          const bool rhs_frozen = frozen.count(cell_id(row, rhs)) > 0;
          if (!rhs_frozen && !rng.Bernoulli(options_.lhs_change_probability)) {
            table->WriteCell(row, rhs, witness_value);
            frozen.insert(cell_id(row, rhs));
          } else {
            // Detach the tuple from the group via one LHS cell. Prefer
            // an unfrozen LHS cell; if all are frozen, overwrite one
            // anyway (the sample stops being set-minimal, but stays a
            // repair).
            AttrId lhs_attr = fd->lhs[rng.Uniform(fd->lhs.size())];
            for (const AttrId candidate : fd->lhs) {
              if (frozen.count(cell_id(row, candidate)) == 0) {
                lhs_attr = candidate;
                break;
              }
            }
            set_fresh(row, lhs_attr);
            frozen.insert(cell_id(row, lhs_attr));
          }
          ++changed_this_round;
        }
      }
    }
    result.cells_changed += changed_this_round;
    if (changed_this_round == 0) break;
  }

  result.consistent = true;
  for (const auto& fd : fds_) {
    if (!Satisfies(*table, fd)) {
      result.consistent = false;
      break;
    }
  }
  return result;
}

}  // namespace fixrep
