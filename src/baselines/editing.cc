#include "baselines/editing.h"

#include <vector>

#include "common/logging.h"

namespace fixrep {

AutoEditRepairer::AutoEditRepairer(const RuleSet* rules) : rules_(rules) {
  FIXREP_CHECK(rules_ != nullptr);
  stats_.Reset(rules_->size());
}

size_t AutoEditRepairer::RepairTuple(TupleSpan t) {
  FIXREP_CHECK_EQ(t.size(), rules_->schema().arity());
  ++stats_.tuples_examined;
  AttrSet assured;
  std::vector<bool> fired(rules_->size(), false);
  size_t cells_changed = 0;
  bool updated = true;
  while (updated) {
    updated = false;
    for (size_t i = 0; i < rules_->size(); ++i) {
      if (fired[i]) continue;
      const FixingRule& rule = rules_->rule(i);
      // Evidence match only — negative patterns deliberately ignored.
      if (assured.Contains(rule.target) || !rule.MatchesEvidence(t)) {
        continue;
      }
      fired[i] = true;
      assured.UnionWith(rule.AssuredSet());
      updated = true;
      if (t[rule.target] != rule.fact) {
        rule.Apply(t);
        ++cells_changed;
        ++stats_.per_rule_applications[i];
      }
    }
  }
  stats_.cells_changed += cells_changed;
  if (cells_changed > 0) ++stats_.tuples_changed;
  return cells_changed;
}

void AutoEditRepairer::RepairTable(Table* table) {
  for (size_t r = 0; r < table->num_rows(); ++r) {
    RepairTuple(table->WriteRow(r));
  }
}

}  // namespace fixrep
