#ifndef FIXREP_BASELINES_HEU_H_
#define FIXREP_BASELINES_HEU_H_

#include <cstddef>
#include <vector>

#include "deps/fd.h"
#include "relation/table.h"

namespace fixrep {

// Result of a baseline repair run.
struct BaselineResult {
  size_t cells_changed = 0;
  size_t passes = 0;
  // True if the table satisfies every FD when the repairer returned.
  bool consistent = false;
};

struct HeuOptions {
  // Upper bound on repair passes; each pass fixes the violations visible
  // at its start, and changes can surface new violations of FDs whose
  // LHS was rewritten.
  size_t max_passes = 8;
  // Cost model for choosing a class's value. false: unit cost (pure
  // plurality — minimizes the number of changed cells). true: Bohannon
  // et al.'s similarity-weighted cost — the chosen value minimizes the
  // sum of normalized edit distances to the class's current values, so
  // a typo-laden class converges on the value its members are closest
  // to. Compared in bench_ablation.
  bool use_similarity_cost = false;
};

// Heu: the cost-based heuristic FD repair of Bohannon et al. (SIGMOD'05),
// the paper's first comparison baseline. Per pass it
//  1. builds equivalence classes of right-hand-side cells with a
//     union-find: for each FD X -> A, all A-cells of rows agreeing on X
//     land in one class;
//  2. resolves each class to the plurality value (the minimum-cost
//     assignment under the unit-change cost model, ties broken by the
//     lexicographically smallest string for determinism);
//  3. writes the chosen value into every cell of the class.
// Passes repeat until no cell changes, the table is consistent, or
// max_passes is reached. This reproduces the baseline's failure mode the
// paper highlights: active-domain errors on the LHS pull tuples into the
// wrong class, and plurality voting then overwrites their correct values.
class HeuRepairer {
 public:
  HeuRepairer(std::vector<FunctionalDependency> fds, HeuOptions options = {});

  // Repairs `table` in place toward FD-consistency.
  BaselineResult Repair(Table* table) const;

 private:
  std::vector<FunctionalDependency> fds_;  // normalized to single RHS
  HeuOptions options_;
};

}  // namespace fixrep

#endif  // FIXREP_BASELINES_HEU_H_
