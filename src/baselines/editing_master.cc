#include "baselines/editing_master.h"

#include <utility>

#include "common/logging.h"

namespace fixrep {

MasterEditRepairer::MasterEditRepairer(std::vector<EditingRule> rules,
                                       const Table* master)
    : rules_(std::move(rules)), master_(master) {
  FIXREP_CHECK(master_ != nullptr);
  master_index_.resize(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) {
    const EditingRule& rule = rules_[i];
    FIXREP_CHECK_EQ(rule.match_attrs.size(),
                    rule.master_match_attrs.size());
    FIXREP_CHECK_EQ(rule.pattern_attrs.size(), rule.pattern_values.size());
    FIXREP_CHECK_NE(rule.update_attr, kInvalidAttr);
    std::vector<ValueId> key(rule.master_match_attrs.size());
    for (size_t m = 0; m < master_->num_rows(); ++m) {
      for (size_t k = 0; k < rule.master_match_attrs.size(); ++k) {
        key[k] = master_->cell(m, rule.master_match_attrs[k]);
      }
      master_index_[i].emplace(key, m);
    }
  }
}

EditingStats MasterEditRepairer::Repair(Table* table,
                                        EditingUserModel user_model,
                                        const Table* truth) const {
  FIXREP_CHECK(table != nullptr);
  if (user_model == EditingUserModel::kOracle) {
    FIXREP_CHECK(truth != nullptr) << "oracle user needs the ground truth";
    FIXREP_CHECK_EQ(truth->num_rows(), table->num_rows());
  }
  EditingStats stats;
  std::vector<ValueId> key;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    for (size_t i = 0; i < rules_.size(); ++i) {
      const EditingRule& rule = rules_[i];
      // Pattern condition tp[Xp].
      bool pattern_ok = true;
      for (size_t k = 0; k < rule.pattern_attrs.size(); ++k) {
        if (table->cell(r, rule.pattern_attrs[k]) !=
            rule.pattern_values[k]) {
          pattern_ok = false;
          break;
        }
      }
      if (!pattern_ok) continue;
      // Master lookup on t[X].
      key.clear();
      for (const AttrId a : rule.match_attrs) {
        key.push_back(table->cell(r, a));
      }
      const auto it = master_index_[i].find(key);
      if (it == master_index_[i].end()) continue;
      // Certification: "is t[X] correct?" — one interaction per ask.
      ++stats.user_interactions;
      if (user_model == EditingUserModel::kOracle) {
        bool match_correct = true;
        for (const AttrId a : rule.match_attrs) {
          if (table->cell(r, a) != truth->cell(r, a)) {
            match_correct = false;
            break;
          }
        }
        if (!match_correct) continue;  // the oracle user says no
      }
      const ValueId master_value =
          master_->cell(it->second, rule.master_update_attr);
      ++stats.rules_fired;
      if (table->cell(r, rule.update_attr) != master_value) {
        table->WriteCell(r, rule.update_attr, master_value);
        ++stats.cells_changed;
      }
    }
  }
  return stats;
}

}  // namespace fixrep
