#include "baselines/heu.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/union_find.h"
#include "common/string_util.h"
#include "common/logging.h"
#include "deps/violation.h"

namespace fixrep {

HeuRepairer::HeuRepairer(std::vector<FunctionalDependency> fds,
                         HeuOptions options)
    : fds_(NormalizeToSingleRhs(fds)), options_(options) {
  FIXREP_CHECK(!fds_.empty());
}

BaselineResult HeuRepairer::Repair(Table* table) const {
  BaselineResult result;
  const size_t arity = table->num_columns();
  const size_t rows = table->num_rows();
  auto cell_id = [arity](size_t row, AttrId attr) {
    return row * arity + static_cast<size_t>(attr);
  };

  for (size_t pass = 0; pass < options_.max_passes; ++pass) {
    ++result.passes;
    // Step 1: union all RHS cells of rows agreeing on an FD's LHS.
    UnionFind classes(rows * arity);
    for (const auto& fd : fds_) {
      const AttrId rhs = fd.rhs[0];
      for (const auto& [lhs_values, group] : PartitionBy(*table, fd.lhs)) {
        for (size_t i = 1; i < group.size(); ++i) {
          classes.Union(cell_id(group[0], rhs), cell_id(group[i], rhs));
        }
      }
    }

    // Step 2: per class, histogram current values and choose the
    // plurality (minimum total changes), tie-broken by the smallest
    // string so repairs are deterministic.
    std::unordered_map<size_t, std::unordered_map<ValueId, size_t>>
        histograms;
    for (const auto& fd : fds_) {
      const AttrId rhs = fd.rhs[0];
      for (size_t r = 0; r < rows; ++r) {
        const size_t root = classes.Find(cell_id(r, rhs));
        ++histograms[root][table->cell(r, rhs)];
      }
    }
    std::unordered_map<size_t, ValueId> chosen;
    chosen.reserve(histograms.size());
    for (const auto& [root, histogram] : histograms) {
      ValueId best = kNullValue;
      if (options_.use_similarity_cost) {
        // Candidate value minimizing the summed normalized edit distance
        // to the class's current values (weighted by multiplicity).
        double best_cost = 0;
        for (const auto& [candidate, unused] : histogram) {
          (void)unused;
          double cost = 0;
          const std::string& candidate_string =
              table->pool().GetString(candidate);
          for (const auto& [value, count] : histogram) {
            if (value == candidate) continue;
            const std::string& value_string =
                table->pool().GetString(value);
            const size_t longest =
                std::max(candidate_string.size(), value_string.size());
            const double distance =
                longest == 0 ? 0.0
                             : static_cast<double>(EditDistance(
                                   candidate_string, value_string)) /
                                   static_cast<double>(longest);
            cost += distance * static_cast<double>(count);
          }
          if (best == kNullValue || cost < best_cost ||
              (cost == best_cost && table->pool().GetString(candidate) <
                                        table->pool().GetString(best))) {
            best = candidate;
            best_cost = cost;
          }
        }
      } else {
        size_t best_count = 0;
        for (const auto& [value, count] : histogram) {
          if (count > best_count ||
              (count == best_count &&
               (best == kNullValue || table->pool().GetString(value) <
                                          table->pool().GetString(best)))) {
            best = value;
            best_count = count;
          }
        }
      }
      chosen[root] = best;
    }

    // Step 3: write the chosen value through each class.
    size_t changed_this_pass = 0;
    for (const auto& fd : fds_) {
      const AttrId rhs = fd.rhs[0];
      for (size_t r = 0; r < rows; ++r) {
        const size_t root = classes.Find(cell_id(r, rhs));
        const ValueId target = chosen.at(root);
        if (table->cell(r, rhs) != target) {
          table->WriteCell(r, rhs, target);
          ++changed_this_pass;
        }
      }
    }
    result.cells_changed += changed_this_pass;
    if (changed_this_pass == 0) break;
  }

  result.consistent = true;
  for (const auto& fd : fds_) {
    if (!Satisfies(*table, fd)) {
      result.consistent = false;
      break;
    }
  }
  return result;
}

}  // namespace fixrep
