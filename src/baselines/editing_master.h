#ifndef FIXREP_BASELINES_EDITING_MASTER_H_
#define FIXREP_BASELINES_EDITING_MASTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "deps/violation.h"
#include "relation/table.h"

namespace fixrep {

// An editing rule with master data (Fan et al., VLDB J.'12 — the paper's
// Exp-2(d) comparison target), e.g. eR1 of the paper's introduction:
//
//   eR1: ((country, country) -> (capital, capital), tp[country] = ())
//
// For a tuple t: if t matches the pattern condition and t[match_attrs]
// equals s[master_match_attrs] for some master tuple s, then t's
// update_attr is set to s[master_update_attr] — PROVIDED the user
// certifies that t[match_attrs] is correct. That certification is the
// defining cost of editing rules: one user interaction per (tuple, rule)
// application.
struct EditingRule {
  std::vector<AttrId> match_attrs;         // X in the data relation
  std::vector<AttrId> master_match_attrs;  // Xm in the master relation
  AttrId update_attr = kInvalidAttr;       // B
  AttrId master_update_attr = kInvalidAttr;  // Bm
  // Optional pattern condition tp[Xp]: constants the tuple must carry.
  std::vector<AttrId> pattern_attrs;
  std::vector<ValueId> pattern_values;
};

// How the "user" answers the certification question.
enum class EditingUserModel {
  // Oracle user: consults the ground truth, says yes only when the
  // matched cells are genuinely correct. Repairs are then guaranteed
  // correct (the editing-rules guarantee), at one interaction per ask.
  kOracle,
  // Automated simulation (the paper's Fig. 12(b) setup): always yes,
  // no ground truth needed, correctness guarantee forfeited.
  kAlwaysYes,
};

struct EditingStats {
  size_t user_interactions = 0;  // certification questions asked
  size_t cells_changed = 0;
  size_t rules_fired = 0;
};

// Applies editing rules against one master relation.
class MasterEditRepairer {
 public:
  // `master` must outlive the repairer. Rules are validated against the
  // data schema lazily at repair time (attribute ids must be in range).
  MasterEditRepairer(std::vector<EditingRule> rules, const Table* master);

  // Repairs `table` in place. `truth` is required for (and only
  // consulted in) the kOracle model; pass nullptr with kAlwaysYes.
  EditingStats Repair(Table* table, EditingUserModel user_model,
                      const Table* truth) const;

 private:
  std::vector<EditingRule> rules_;
  const Table* master_;
  // Per rule: hash index from the master-match projection to the master
  // row (first match wins; master data is assumed duplicate-free on Xm).
  std::vector<std::unordered_map<std::vector<ValueId>, size_t,
                                 ValueVectorHash>>
      master_index_;
};

}  // namespace fixrep

#endif  // FIXREP_BASELINES_EDITING_MASTER_H_
