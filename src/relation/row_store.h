#ifndef FIXREP_RELATION_ROW_STORE_H_
#define FIXREP_RELATION_ROW_STORE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "relation/tuple_ref.h"
#include "relation/value_pool.h"

namespace fixrep {

// Flat columnar-friendly row store: every cell of every row lives in one
// contiguous std::vector<ValueId>, row-major and arity-strided — row i
// occupies cells_[i*arity .. (i+1)*arity). One heap block for the whole
// relation instead of one vector per tuple: appends are a bump of the
// tail, scans are a single linear walk, and copying a table is one
// memcpy-sized vector copy.
//
// Growth is block-aligned: capacity is always a whole number of
// kRowsPerBlock-row blocks, so reallocation happens at most once per
// block, never mid-row. Reserve() lets ingestion pre-size the store from
// a row-count estimate and avoid reallocation entirely.
//
// Views handed out by row()/WriteRow() point into the cell vector; an
// append may reallocate and invalidate them (see tuple_ref.h lifetime
// rules). In-place cell writes never invalidate anything.
class RowStore {
 public:
  // Rows per allocation block. 4096 rows * arity cells keeps growth
  // infrequent without over-reserving small tables.
  static constexpr size_t kRowsPerBlock = 4096;

  explicit RowStore(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t num_rows() const { return num_rows_; }
  // Rows the store can hold before the next (block-aligned) reallocation.
  size_t capacity_rows() const {
    return arity_ == 0 ? 0 : cells_.capacity() / arity_;
  }

  TupleRef row(size_t i) const {
    return TupleRef(cells_.data() + i * arity_, arity_);
  }
  TupleSpan WriteRow(size_t i) {
    return TupleSpan(cells_.data() + i * arity_, arity_);
  }

  ValueId cell(size_t row, size_t attr) const {
    return cells_[row * arity_ + attr];
  }
  void WriteCell(size_t row, size_t attr, ValueId value) {
    cells_[row * arity_ + attr] = value;
  }

  // Copies `row` (size must equal arity — checked by the caller) onto the
  // end of the store.
  void AppendRow(TupleRef row) {
    GrowForAppend();
    cells_.insert(cells_.end(), row.begin(), row.end());
    ++num_rows_;
  }

  // Appends an uninitialized row and returns a span to fill in. The span
  // is valid until the next append.
  TupleSpan AppendRowUninit() {
    GrowForAppend();
    cells_.resize(cells_.size() + arity_, kNullValue);
    ++num_rows_;
    return WriteRow(num_rows_ - 1);
  }

  // Pre-sizes for `rows` rows, rounded up to a whole block.
  void Reserve(size_t rows) {
    cells_.reserve(RoundUpToBlock(rows) * arity_);
  }

  // Drops all rows but keeps the allocation — the streaming pipeline
  // reuses one chunk store across chunks.
  void Clear() {
    cells_.clear();
    num_rows_ = 0;
  }

  // Heap footprint of the cell array in bytes.
  size_t bytes() const { return cells_.capacity() * sizeof(ValueId); }

 private:
  static size_t RoundUpToBlock(size_t rows) {
    return (rows + kRowsPerBlock - 1) / kRowsPerBlock * kRowsPerBlock;
  }

  // Keeps growth row-aligned: capacity doubles like a vector but lands on
  // a 64-row sub-block boundary while the table is small and on a full
  // kRowsPerBlock boundary once it is large, so reallocation never splits
  // a row and big tables grow in whole blocks.
  void GrowForAppend() {
    if (cells_.size() + arity_ <= cells_.capacity()) return;
    const size_t want = std::max(num_rows_ * 2, num_rows_ + 1);
    const size_t align = num_rows_ >= kRowsPerBlock ? kRowsPerBlock : 64;
    cells_.reserve((want + align - 1) / align * align * arity_);
  }

  size_t arity_;
  size_t num_rows_ = 0;
  std::vector<ValueId> cells_;
};

}  // namespace fixrep

#endif  // FIXREP_RELATION_ROW_STORE_H_
