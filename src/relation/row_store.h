#ifndef FIXREP_RELATION_ROW_STORE_H_
#define FIXREP_RELATION_ROW_STORE_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "relation/tuple_ref.h"
#include "relation/value_pool.h"

namespace fixrep {

struct RowStoreSpill;

// Flat columnar-friendly row store: every cell of every row lives in one
// contiguous std::vector<ValueId>, row-major and arity-strided — row i
// occupies cells_[i*arity .. (i+1)*arity). One heap block for the whole
// relation instead of one vector per tuple: appends are a bump of the
// tail, scans are a single linear walk, and copying a table is one
// memcpy-sized vector copy.
//
// Growth is block-aligned: capacity is always a whole number of
// kRowsPerBlock-row blocks, so reallocation happens at most once per
// block, never mid-row. Reserve() lets ingestion pre-size the store from
// a row-count estimate and avoid reallocation entirely.
//
// Views handed out by row()/WriteRow() point into the cell vector; an
// append may reallocate and invalidate them (see tuple_ref.h lifetime
// rules). In-place cell writes never invalidate anything.
//
// Out-of-core mode (EnableSpill, docs/storage.md): cells live in
// kRowsPerBlock-row heap blocks instead of one vector; full blocks past
// a resident byte budget are written to a temp-backed BlockFile and
// mmap'd read-only back in on demand, with LRU eviction of unpinned
// blocks. Reads are transparent (a read of a spilled row maps its
// block); writes require the block to be resident-writable — sequential
// writers get that automatically (the first write to a block loads it
// back), and block-wise drivers use MakeBlockWritable/PinBlock to hold a
// block in place for the duration of a chase. Spill-mode view lifetime:
// a row view stays valid until the next *state transition* of its block
// (eviction, load-for-write); transitions only happen inside this
// class's slow paths, never during plain reads/writes of an addressable
// block.
class RowStore {
 public:
  // Rows per allocation block. 4096 rows * arity cells keeps growth
  // infrequent without over-reserving small tables, and makes every
  // spill block a page-aligned arity*16KiB.
  static constexpr size_t kRowsPerBlock = 4096;

  explicit RowStore(size_t arity);
  ~RowStore();

  // Copying an out-of-core store is disallowed (it would defeat the
  // budget); flat stores copy as before.
  RowStore(const RowStore& other);
  RowStore& operator=(const RowStore& other);
  RowStore(RowStore&&) noexcept;
  RowStore& operator=(RowStore&&) noexcept;

  size_t arity() const { return arity_; }
  size_t num_rows() const { return num_rows_; }
  // Rows the store can hold before the next (block-aligned) reallocation.
  size_t capacity_rows() const {
    if (spill_ != nullptr) return RoundUpToBlock(num_rows_);
    return arity_ == 0 ? 0 : cells_.capacity() / arity_;
  }

  TupleRef row(size_t i) const {
    if (spill_ == nullptr) {
      return TupleRef(cells_.data() + i * arity_, arity_);
    }
    return TupleRef(SpillReadPtr(i), arity_);
  }
  TupleSpan WriteRow(size_t i) {
    if (spill_ == nullptr) {
      return TupleSpan(cells_.data() + i * arity_, arity_);
    }
    return TupleSpan(SpillWritePtr(i), arity_);
  }

  ValueId cell(size_t row, size_t attr) const {
    if (spill_ == nullptr) return cells_[row * arity_ + attr];
    return SpillReadPtr(row)[attr];
  }
  void WriteCell(size_t row, size_t attr, ValueId value) {
    if (spill_ == nullptr) {
      cells_[row * arity_ + attr] = value;
      return;
    }
    SpillWritePtr(row)[attr] = value;
  }

  // Copies `row` (size must equal arity — checked by the caller) onto the
  // end of the store.
  void AppendRow(TupleRef row) {
    if (spill_ != nullptr) {
      TupleSpan dst = SpillAppendUninit();
      dst.CopyFrom(row);
      return;
    }
    GrowForAppend();
    cells_.insert(cells_.end(), row.begin(), row.end());
    ++num_rows_;
  }

  // Appends an uninitialized row and returns a span to fill in. The span
  // is valid until the next append.
  TupleSpan AppendRowUninit() {
    if (spill_ != nullptr) return SpillAppendUninit();
    GrowForAppend();
    cells_.resize(cells_.size() + arity_, kNullValue);
    ++num_rows_;
    return WriteRow(num_rows_ - 1);
  }

  // Pre-sizes for `rows` rows, rounded up to a whole block. No-op in
  // spill mode (blocks are allocated one at a time by design).
  void Reserve(size_t rows) {
    if (spill_ != nullptr) return;
    cells_.reserve(RoundUpToBlock(rows) * arity_);
  }

  // Drops all rows but keeps the allocation — the streaming pipeline
  // reuses one chunk store (and, in spill mode, one spill file) across
  // chunks.
  void Clear();

  // Heap footprint of the cell storage in bytes (spill mode: resident
  // blocks only — the number the budget governs).
  size_t bytes() const;

  // ------------------------------------------------------- spill mode --
  // Switches this (empty) store out-of-core: appends fill one writable
  // tail block at a time, and completed blocks beyond
  // `resident_budget_bytes` of resident cells spill to a temp-backed
  // mmap file. A budget of 0 keeps every block resident (spill machinery
  // on, eviction off). The effective budget never drops below the
  // working-set floor (tail + one in-flight block + pinned blocks), so
  // tiny budgets degrade to "spill everything else" rather than
  // deadlock.
  Status EnableSpill(size_t resident_budget_bytes);
  bool spilling() const { return spill_ != nullptr; }

  // Blocks covering num_rows(); the last one may be partial.
  size_t num_blocks() const {
    return (num_rows_ + kRowsPerBlock - 1) / kRowsPerBlock;
  }
  size_t rows_in_block(size_t block) const {
    return std::min(kRowsPerBlock, num_rows_ - block * kRowsPerBlock);
  }

  // Pins make a block addressable and exempt from eviction until the
  // matching UnpinBlock — how a chase keeps its TupleRef/TupleSpan views
  // valid while other blocks page in and out. Pins nest.
  void PinBlock(size_t block);
  void UnpinBlock(size_t block);

  // Loads `block` into writable heap memory (reading it back from the
  // spill file if needed) so row writes in it are plain stores. Implied
  // by the first WriteRow/WriteCell touching the block; block-wise
  // drivers call it up front so the per-row path never transitions.
  void MakeBlockWritable(size_t block);

  // Spill-mode telemetry (all 0 for flat stores).
  size_t resident_bytes() const;
  size_t peak_resident_bytes() const;
  size_t effective_budget_bytes() const;
  size_t spilled_blocks() const;   // blocks currently on disk only
  size_t spill_file_bytes() const;

 private:
  static size_t RoundUpToBlock(size_t rows) {
    return (rows + kRowsPerBlock - 1) / kRowsPerBlock * kRowsPerBlock;
  }

  // Keeps growth row-aligned: capacity doubles like a vector but lands on
  // a 64-row sub-block boundary while the table is small and on a full
  // kRowsPerBlock boundary once it is large, so reallocation never splits
  // a row and big tables grow in whole blocks.
  void GrowForAppend() {
    if (cells_.size() + arity_ <= cells_.capacity()) return;
    const size_t want = std::max(num_rows_ * 2, num_rows_ + 1);
    const size_t align = num_rows_ >= kRowsPerBlock ? kRowsPerBlock : 64;
    cells_.reserve((want + align - 1) / align * align * arity_);
  }

  // Out-of-line spill paths (row_store.cc). Read/Write fast-path on an
  // addressable block without touching shared state; the slow paths
  // (map, load-for-write, evict) serialize on the spill mutex.
  const ValueId* SpillReadPtr(size_t row) const;
  ValueId* SpillWritePtr(size_t row);
  TupleSpan SpillAppendUninit();

  size_t arity_;
  size_t num_rows_ = 0;
  std::vector<ValueId> cells_;
  std::unique_ptr<RowStoreSpill> spill_;
};

}  // namespace fixrep

#endif  // FIXREP_RELATION_ROW_STORE_H_
