#include "relation/table.h"

#include <utility>

#include "common/logging.h"

namespace fixrep {

namespace {
const std::string kEmptyString;
}  // namespace

Table::Table(std::shared_ptr<const Schema> schema,
             std::shared_ptr<ValuePool> pool)
    : schema_(std::move(schema)), pool_(std::move(pool)) {
  FIXREP_CHECK(schema_ != nullptr);
  FIXREP_CHECK(pool_ != nullptr);
}

void Table::AppendRow(Tuple row) {
  FIXREP_CHECK_EQ(row.size(), schema_->arity());
  rows_.push_back(std::move(row));
}

void Table::AppendRowStrings(const std::vector<std::string>& fields) {
  FIXREP_CHECK_EQ(fields.size(), schema_->arity());
  Tuple row(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    row[i] = pool_->Intern(fields[i]);
  }
  rows_.push_back(std::move(row));
}

const std::string& Table::CellString(size_t row, AttrId attr) const {
  const ValueId id = cell(row, attr);
  if (id == kNullValue) return kEmptyString;
  return pool_->GetString(id);
}

std::string Table::FormatRow(size_t row) const {
  std::string out = "(";
  for (size_t a = 0; a < num_columns(); ++a) {
    if (a > 0) out += ", ";
    out += CellString(row, static_cast<AttrId>(a));
  }
  out += ")";
  return out;
}

}  // namespace fixrep
