#include "relation/table.h"

#include <utility>

#include "common/logging.h"

namespace fixrep {

Table::Table(std::shared_ptr<const Schema> schema,
             std::shared_ptr<ValuePool> pool)
    : schema_(std::move(schema)),
      pool_(std::move(pool)),
      store_(schema_ == nullptr ? 0 : schema_->arity()) {
  FIXREP_CHECK(schema_ != nullptr);
  FIXREP_CHECK(pool_ != nullptr);
}

void Table::AppendRow(TupleRef row) {
  FIXREP_CHECK_EQ(row.size(), schema_->arity());
  store_.AppendRow(row);
}

void Table::AppendRowStrings(const std::vector<std::string>& fields) {
  FIXREP_CHECK_EQ(fields.size(), schema_->arity());
  const TupleSpan row = store_.AppendRowUninit();
  for (size_t i = 0; i < fields.size(); ++i) {
    row[i] = pool_->Intern(fields[i]);
  }
}

void Table::AppendRowStringsMasked(const std::vector<std::string>& fields,
                                   AttrSet materialize) {
  FIXREP_CHECK_EQ(fields.size(), schema_->arity());
  const TupleSpan row = store_.AppendRowUninit();
  for (size_t i = 0; i < fields.size(); ++i) {
    row[i] = materialize.Contains(static_cast<AttrId>(i))
                 ? pool_->Intern(fields[i])
                 : kNullValue;
  }
}

const std::string& Table::CellString(size_t row, AttrId attr) const {
  // Function-local static: one empty string for every table and every
  // null cell, alive for the whole process, so the returned reference
  // can never dangle regardless of table lifetime.
  static const std::string kEmptyString;
  const ValueId id = cell(row, attr);
  if (id == kNullValue) return kEmptyString;
  return pool_->GetString(id);
}

bool Table::RowsEqual(const Table& other) const {
  if (num_rows() != other.num_rows() ||
      num_columns() != other.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < num_rows(); ++r) {
    if (row(r) != other.row(r)) return false;
  }
  return true;
}

std::string Table::FormatRow(size_t row) const {
  std::string out = "(";
  for (size_t a = 0; a < num_columns(); ++a) {
    if (a > 0) out += ", ";
    out += CellString(row, static_cast<AttrId>(a));
  }
  out += ")";
  return out;
}

}  // namespace fixrep
