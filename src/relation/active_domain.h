#ifndef FIXREP_RELATION_ACTIVE_DOMAIN_H_
#define FIXREP_RELATION_ACTIVE_DOMAIN_H_

#include <vector>

#include "relation/table.h"

namespace fixrep {

// Distinct non-null values per attribute (the active domain), in
// first-seen order. Used by the noise injector (active-domain errors)
// and by rule generation (negative-pattern enrichment).
std::vector<std::vector<ValueId>> ActiveDomains(const Table& table);

}  // namespace fixrep

#endif  // FIXREP_RELATION_ACTIVE_DOMAIN_H_
