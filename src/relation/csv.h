#ifndef FIXREP_RELATION_CSV_H_
#define FIXREP_RELATION_CSV_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "relation/table.h"

namespace fixrep {

// Minimal RFC-4180-style CSV: comma-separated, '"'-quoted fields with ""
// escapes; the first record is the header and becomes the schema.
//
// ReadCsv* CHECK-fail on structurally malformed input (record arity not
// matching the header); unquoted whitespace is preserved verbatim.

// Reads a table from a stream. `relation_name` names the schema.
Table ReadCsv(std::istream& in, const std::string& relation_name,
              std::shared_ptr<ValuePool> pool);

// Reads a table from a file path.
Table ReadCsvFile(const std::string& path, const std::string& relation_name,
                  std::shared_ptr<ValuePool> pool);

// Writes header + rows; fields containing comma/quote/newline are quoted.
void WriteCsv(const Table& table, std::ostream& out);
void WriteCsvFile(const Table& table, const std::string& path);

}  // namespace fixrep

#endif  // FIXREP_RELATION_CSV_H_
