#ifndef FIXREP_RELATION_CSV_H_
#define FIXREP_RELATION_CSV_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/quarantine.h"
#include "common/status.h"
#include "relation/table.h"

namespace fixrep {

// Minimal RFC-4180-style CSV: comma-separated, '"'-quoted fields with ""
// escapes; the first record is the header and becomes the schema.
//
// Two tiers of entry points:
//  * ReadCsv / ReadCsvFile / WriteCsvFile CHECK-fail on malformed input
//    or IO failure — for trusted, developer-controlled artifacts.
//  * The *Lenient / Try* variants return Status and, per
//    CsvReadOptions::on_error, can skip or quarantine malformed data
//    records (arity mismatch, unterminated quote at EOF) instead of
//    failing the whole read. Header problems (empty input, unterminated
//    quote, duplicate column names) are always fatal: without a schema
//    there is nothing to salvage. Unquoted whitespace is preserved
//    verbatim either way.
//
// For out-of-core ingestion, CsvChunkReader parses the same format
// incrementally: open once (header -> schema), then pull fixed-size row
// chunks — the input side of the streaming repair pipeline
// (repair/streaming.h, docs/storage.md).

struct CsvReadOptions {
  OnErrorPolicy on_error = OnErrorPolicy::kAbort;
  // Receives a Diagnostic per dropped record when on_error is
  // kQuarantine. Diagnostic::line is the 0-based data-record ordinal
  // (header excluded), matching the row index a clean read would give
  // the record; raw_text preserves the record verbatim.
  QuarantineSink* quarantine = nullptr;
};

// Incremental CSV reader: parses the header eagerly at Open, then hands
// out data records in chunks of at most `max_rows`, applying the same
// lenient error policy as ReadCsvLenient. Record ordinals (and thus
// quarantine Diagnostic::line values) are global across chunks, so a
// chunked read of a file is indistinguishable from a whole-file read.
// The stream must outlive the reader.
class CsvChunkReader {
 public:
  // Reads and validates the header. Header problems are fatal (same
  // policy as ReadCsvLenient).
  static StatusOr<CsvChunkReader> Open(std::istream& in,
                                       const std::string& relation_name,
                                       std::shared_ptr<ValuePool> pool,
                                       const CsvReadOptions& options = {});

  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  const std::shared_ptr<ValuePool>& pool() const { return pool_; }

  // An empty table bound to the reader's schema and pool, for use as the
  // chunk buffer (Clear() it between chunks to reuse the allocation).
  Table MakeChunkTable() const { return Table(schema_, pool_); }

  // Appends up to `max_rows` data records to *chunk (which must use the
  // reader's schema). Returns the number appended — 0 exactly at end of
  // input. Malformed records follow the open options: kAbort returns
  // their error, kSkip/kQuarantine drop them (they count toward the
  // record ordinal but not toward the returned row count).
  StatusOr<size_t> ReadChunk(Table* chunk, size_t max_rows);

  bool at_end() const { return at_end_; }
  // Data records consumed so far, including dropped ones.
  size_t records_read() const { return record_; }

 private:
  CsvChunkReader(std::istream* in, std::shared_ptr<const Schema> schema,
                 std::shared_ptr<ValuePool> pool,
                 const CsvReadOptions& options);

  std::istream* in_;
  std::shared_ptr<const Schema> schema_;
  std::shared_ptr<ValuePool> pool_;
  CsvReadOptions options_;
  size_t record_ = 0;
  bool at_end_ = false;
  // Per-record scratch, reused across the whole read.
  std::vector<std::string> fields_;
  std::string raw_;
};

// Reads a table from a stream. `relation_name` names the schema. Every
// dropped record ticks fixrep.quarantine.rows (kSkip and kQuarantine).
StatusOr<Table> ReadCsvLenient(std::istream& in,
                               const std::string& relation_name,
                               std::shared_ptr<ValuePool> pool,
                               const CsvReadOptions& options = {});

// Reads a table from a file path. Pre-sizes the value pool and row store
// from the file size so bulk ingestion avoids rehash/reallocation.
StatusOr<Table> ReadCsvFileLenient(const std::string& path,
                                   const std::string& relation_name,
                                   std::shared_ptr<ValuePool> pool,
                                   const CsvReadOptions& options = {});

// Writes header + rows; fields containing comma/quote/newline are quoted.
void WriteCsv(const Table& table, std::ostream& out);

// Streaming-friendly pieces of WriteCsv: the header line alone, and a
// row range [begin_row, table.num_rows()) with no header. WriteCsv ==
// WriteCsvHeader + WriteCsvRows, byte for byte.
void WriteCsvHeader(const Schema& schema, std::ostream& out);
void WriteCsvRows(const Table& table, std::ostream& out,
                  size_t begin_row = 0);

// Writes, flushes, and verifies the stream so short writes (disk full,
// revoked mount) surface as kIoError instead of silently truncating.
Status TryWriteCsvFile(const Table& table, const std::string& path);

// CHECK-ing wrappers over the lenient/Try variants above.
Table ReadCsv(std::istream& in, const std::string& relation_name,
              std::shared_ptr<ValuePool> pool);
Table ReadCsvFile(const std::string& path, const std::string& relation_name,
                  std::shared_ptr<ValuePool> pool);
void WriteCsvFile(const Table& table, const std::string& path);

}  // namespace fixrep

#endif  // FIXREP_RELATION_CSV_H_
