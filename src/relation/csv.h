#ifndef FIXREP_RELATION_CSV_H_
#define FIXREP_RELATION_CSV_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/quarantine.h"
#include "common/status.h"
#include "relation/table.h"

namespace fixrep {

// Minimal RFC-4180-style CSV: comma-separated, '"'-quoted fields with ""
// escapes; the first record is the header and becomes the schema.
//
// Two tiers of entry points:
//  * ReadCsv / ReadCsvFile / WriteCsvFile CHECK-fail on malformed input
//    or IO failure — for trusted, developer-controlled artifacts.
//  * The *Lenient / Try* variants return Status and, per
//    CsvReadOptions::on_error, can skip or quarantine malformed data
//    records (arity mismatch, unterminated quote at EOF) instead of
//    failing the whole read. Header problems (empty input, unterminated
//    quote, duplicate column names) are always fatal: without a schema
//    there is nothing to salvage. Unquoted whitespace is preserved
//    verbatim either way.

struct CsvReadOptions {
  OnErrorPolicy on_error = OnErrorPolicy::kAbort;
  // Receives a Diagnostic per dropped record when on_error is
  // kQuarantine. Diagnostic::line is the 0-based data-record ordinal
  // (header excluded), matching the row index a clean read would give
  // the record; raw_text preserves the record verbatim.
  QuarantineSink* quarantine = nullptr;
};

// Reads a table from a stream. `relation_name` names the schema. Every
// dropped record ticks fixrep.quarantine.rows (kSkip and kQuarantine).
StatusOr<Table> ReadCsvLenient(std::istream& in,
                               const std::string& relation_name,
                               std::shared_ptr<ValuePool> pool,
                               const CsvReadOptions& options = {});

// Reads a table from a file path.
StatusOr<Table> ReadCsvFileLenient(const std::string& path,
                                   const std::string& relation_name,
                                   std::shared_ptr<ValuePool> pool,
                                   const CsvReadOptions& options = {});

// Writes header + rows; fields containing comma/quote/newline are quoted.
void WriteCsv(const Table& table, std::ostream& out);

// Writes, flushes, and verifies the stream so short writes (disk full,
// revoked mount) surface as kIoError instead of silently truncating.
Status TryWriteCsvFile(const Table& table, const std::string& path);

// CHECK-ing wrappers over the lenient/Try variants above.
Table ReadCsv(std::istream& in, const std::string& relation_name,
              std::shared_ptr<ValuePool> pool);
Table ReadCsvFile(const std::string& path, const std::string& relation_name,
                  std::shared_ptr<ValuePool> pool);
void WriteCsvFile(const Table& table, const std::string& path);

}  // namespace fixrep

#endif  // FIXREP_RELATION_CSV_H_
