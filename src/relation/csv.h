#ifndef FIXREP_RELATION_CSV_H_
#define FIXREP_RELATION_CSV_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/quarantine.h"
#include "common/status.h"
#include "relation/table.h"

namespace fixrep {

// Minimal RFC-4180-style CSV: comma-separated, '"'-quoted fields with ""
// escapes; the first record is the header and becomes the schema.
//
// Two tiers of entry points:
//  * ReadCsv / ReadCsvFile / WriteCsvFile CHECK-fail on malformed input
//    or IO failure — for trusted, developer-controlled artifacts.
//  * The *Lenient / Try* variants return Status and, per
//    CsvReadOptions::on_error, can skip or quarantine malformed data
//    records (arity mismatch, unterminated quote at EOF) instead of
//    failing the whole read. Header problems (empty input, unterminated
//    quote, duplicate column names) are always fatal: without a schema
//    there is nothing to salvage. Unquoted whitespace is preserved
//    verbatim either way.
//
// For out-of-core ingestion, CsvChunkReader parses the same format
// incrementally: open once (header -> schema), then pull fixed-size row
// chunks — the input side of the streaming repair pipeline
// (repair/streaming.h, docs/storage.md).

struct CsvReadOptions {
  OnErrorPolicy on_error = OnErrorPolicy::kAbort;
  // Receives a Diagnostic per dropped record when on_error is
  // kQuarantine. Diagnostic::line is the 0-based data-record ordinal
  // (header excluded), matching the row index a clean read would give
  // the record; raw_text preserves the record verbatim.
  QuarantineSink* quarantine = nullptr;
};

// Column-pruning sidecar (docs/storage.md): the raw field text of every
// column NOT in `materialized`, carried outside the table so pruned
// columns are never interned into the ValuePool. `columns` is
// arity-sized; entry a holds one string per appended row when attribute
// a is pruned and stays empty when it is materialized. Feed it to
// CsvChunkReader::ReadChunk and hand it back to WriteCsvRowsPruned —
// the round trip re-emits the parsed fields verbatim, so output is
// byte-identical to the unpruned path.
struct ColumnSidecar {
  AttrSet materialized;
  std::vector<std::vector<std::string>> columns;

  // Sizes the sidecar for an arity-attribute schema keeping `materialize`.
  void Init(size_t arity, AttrSet materialize) {
    materialized = materialize;
    columns.assign(arity, {});
  }
  // Drops all rows, keeping allocations (streaming chunk reuse).
  void Clear() {
    for (auto& column : columns) column.clear();
  }
  bool pruned(AttrId attr) const { return !materialized.Contains(attr); }
  size_t num_pruned() const {
    size_t n = 0;
    for (size_t a = 0; a < columns.size(); ++a) {
      if (pruned(static_cast<AttrId>(a))) ++n;
    }
    return n;
  }
};

// Incremental CSV reader: parses the header eagerly at Open, then hands
// out data records in chunks of at most `max_rows`, applying the same
// lenient error policy as ReadCsvLenient. Record ordinals (and thus
// quarantine Diagnostic::line values) are global across chunks, so a
// chunked read of a file is indistinguishable from a whole-file read.
// The stream must outlive the reader.
class CsvChunkReader {
 public:
  // Reads and validates the header. Header problems are fatal (same
  // policy as ReadCsvLenient).
  static StatusOr<CsvChunkReader> Open(std::istream& in,
                                       const std::string& relation_name,
                                       std::shared_ptr<ValuePool> pool,
                                       const CsvReadOptions& options = {});

  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  const std::shared_ptr<ValuePool>& pool() const { return pool_; }

  // An empty table bound to the reader's schema and pool, for use as the
  // chunk buffer (Clear() it between chunks to reuse the allocation).
  Table MakeChunkTable() const { return Table(schema_, pool_); }

  // Appends up to `max_rows` data records to *chunk (which must use the
  // reader's schema). Returns the number appended — 0 exactly at end of
  // input. Malformed records follow the open options: kAbort returns
  // their error, kSkip/kQuarantine drop them (they count toward the
  // record ordinal but not toward the returned row count).
  //
  // With a non-null `sidecar` (column pruning), only
  // sidecar->materialized columns are interned into the chunk; the rest
  // land in the sidecar as raw field text and the chunk stores
  // kNullValue in their cells. A record must still parse whole — arity
  // checks are unaffected by pruning.
  StatusOr<size_t> ReadChunk(Table* chunk, size_t max_rows,
                             ColumnSidecar* sidecar = nullptr);

  bool at_end() const { return at_end_; }
  // Data records consumed so far, including dropped ones.
  size_t records_read() const { return record_; }
  // The current quarantine sink (may be null). Streaming WAL journaling
  // swaps a capture sink in around a ReadChunk to see exactly the
  // diagnostics one chunk produced; error policy and record ordinals
  // are unaffected by the swap.
  QuarantineSink* quarantine() const { return options_.quarantine; }
  QuarantineSink* SwapQuarantine(QuarantineSink* sink) {
    QuarantineSink* previous = options_.quarantine;
    options_.quarantine = sink;
    return previous;
  }
  // Stream position in bytes (tellg), for input-progress reporting; 0
  // when the stream cannot tell (pipes, failed state at EOF).
  uint64_t bytes_read() const {
    const auto pos = in_->tellg();
    return pos < 0 ? 0 : static_cast<uint64_t>(pos);
  }

 private:
  CsvChunkReader(std::istream* in, std::shared_ptr<const Schema> schema,
                 std::shared_ptr<ValuePool> pool,
                 const CsvReadOptions& options);

  std::istream* in_;
  std::shared_ptr<const Schema> schema_;
  std::shared_ptr<ValuePool> pool_;
  CsvReadOptions options_;
  size_t record_ = 0;
  bool at_end_ = false;
  // Per-record scratch, reused across the whole read.
  std::vector<std::string> fields_;
  std::string raw_;
};

// Reads a table from a stream. `relation_name` names the schema. Every
// dropped record ticks fixrep.quarantine.rows (kSkip and kQuarantine).
StatusOr<Table> ReadCsvLenient(std::istream& in,
                               const std::string& relation_name,
                               std::shared_ptr<ValuePool> pool,
                               const CsvReadOptions& options = {});

// Reads a table from a file path. Pre-sizes the value pool and row store
// from the file size so bulk ingestion avoids rehash/reallocation.
StatusOr<Table> ReadCsvFileLenient(const std::string& path,
                                   const std::string& relation_name,
                                   std::shared_ptr<ValuePool> pool,
                                   const CsvReadOptions& options = {});

// Writes header + rows; fields containing comma/quote/newline are quoted.
void WriteCsv(const Table& table, std::ostream& out);

// Streaming-friendly pieces of WriteCsv: the header line alone, and a
// row range [begin_row, table.num_rows()) with no header. WriteCsv ==
// WriteCsvHeader + WriteCsvRows, byte for byte.
void WriteCsvHeader(const Schema& schema, std::ostream& out);
void WriteCsvRows(const Table& table, std::ostream& out,
                  size_t begin_row = 0);

// Row emission for a column-pruned chunk: materialized cells render from
// the pool, pruned cells from the sidecar's raw text. Byte-identical to
// WriteCsvRows over an unpruned read of the same records.
void WriteCsvRowsPruned(const Table& table, const ColumnSidecar& sidecar,
                        std::ostream& out);

// Writes, flushes, and verifies the stream so short writes (disk full,
// revoked mount) surface as kIoError instead of silently truncating.
Status TryWriteCsvFile(const Table& table, const std::string& path);

// CHECK-ing wrappers over the lenient/Try variants above.
Table ReadCsv(std::istream& in, const std::string& relation_name,
              std::shared_ptr<ValuePool> pool);
Table ReadCsvFile(const std::string& path, const std::string& relation_name,
                  std::shared_ptr<ValuePool> pool);
void WriteCsvFile(const Table& table, const std::string& path);

}  // namespace fixrep

#endif  // FIXREP_RELATION_CSV_H_
