#include "relation/csv.h"

#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace fixrep {

namespace {

// Parses one CSV record (handling quoted fields that may span lines).
// Returns false on EOF with no data consumed.
bool ReadRecord(std::istream& in, std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  int c;
  while ((c = in.get()) != EOF) {
    saw_any = true;
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          in.get();
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_quotes = true;
        break;
      case ',':
        fields->push_back(std::move(field));
        field.clear();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        fields->push_back(std::move(field));
        return true;
      default:
        field.push_back(ch);
        break;
    }
  }
  if (!saw_any) return false;
  fields->push_back(std::move(field));
  return true;
}

void WriteField(const std::string& field, std::ostream& out) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    out << field;
    return;
  }
  out << '"';
  for (const char ch : field) {
    if (ch == '"') out << '"';
    out << ch;
  }
  out << '"';
}

}  // namespace

Table ReadCsv(std::istream& in, const std::string& relation_name,
              std::shared_ptr<ValuePool> pool) {
  std::vector<std::string> fields;
  FIXREP_CHECK(ReadRecord(in, &fields)) << "empty CSV input";
  auto schema = std::make_shared<Schema>(relation_name, fields);
  Table table(std::move(schema), std::move(pool));
  while (ReadRecord(in, &fields)) {
    FIXREP_CHECK_EQ(fields.size(), table.schema().arity())
        << "CSV record arity mismatch at row " << table.num_rows();
    table.AppendRowStrings(fields);
  }
  return table;
}

Table ReadCsvFile(const std::string& path, const std::string& relation_name,
                  std::shared_ptr<ValuePool> pool) {
  std::ifstream in(path);
  FIXREP_CHECK(in.good()) << "cannot open " << path;
  return ReadCsv(in, relation_name, std::move(pool));
}

void WriteCsv(const Table& table, std::ostream& out) {
  const Schema& schema = table.schema();
  for (size_t a = 0; a < schema.arity(); ++a) {
    if (a > 0) out << ',';
    WriteField(schema.attribute_name(static_cast<AttrId>(a)), out);
  }
  out << '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << ',';
      WriteField(table.CellString(r, static_cast<AttrId>(a)), out);
    }
    out << '\n';
  }
}

void WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  FIXREP_CHECK(out.good()) << "cannot open " << path << " for writing";
  WriteCsv(table, out);
}

}  // namespace fixrep
