#include "relation/csv.h"

#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace fixrep {

namespace {

// Parses one CSV record (handling quoted fields that may span lines).
// Returns false on EOF with no data consumed. When `raw` is non-null the
// record's text is appended verbatim (terminator stripped) for
// quarantine diagnostics. `*unterminated` reports a quoted field still
// open when the input ended.
bool ReadRecord(std::istream& in, std::vector<std::string>* fields,
                std::string* raw, bool* unterminated) {
  fields->clear();
  if (raw != nullptr) raw->clear();
  *unterminated = false;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  int c;
  while ((c = in.get()) != EOF) {
    saw_any = true;
    const char ch = static_cast<char>(c);
    if (raw != nullptr && ch != '\n' && ch != '\r') raw->push_back(ch);
    if (in_quotes) {
      if (raw != nullptr && (ch == '\n' || ch == '\r')) raw->push_back(ch);
      if (ch == '"') {
        if (in.peek() == '"') {
          in.get();
          field.push_back('"');
          if (raw != nullptr) raw->push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_quotes = true;
        break;
      case ',':
        fields->push_back(std::move(field));
        field.clear();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        fields->push_back(std::move(field));
        return true;
      default:
        field.push_back(ch);
        break;
    }
  }
  if (!saw_any) return false;
  *unterminated = in_quotes;
  fields->push_back(std::move(field));
  return true;
}

void WriteField(const std::string& field, std::ostream& out) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    out << field;
    return;
  }
  out << '"';
  for (const char ch : field) {
    if (ch == '"') out << '"';
    out << ch;
  }
  out << '"';
}

}  // namespace

StatusOr<Table> ReadCsvLenient(std::istream& in,
                               const std::string& relation_name,
                               std::shared_ptr<ValuePool> pool,
                               const CsvReadOptions& options) {
  const bool lenient = options.on_error != OnErrorPolicy::kAbort;
  // Raw text is only captured when a record can end up quarantined.
  std::string raw_storage;
  std::string* raw =
      options.on_error == OnErrorPolicy::kQuarantine ? &raw_storage : nullptr;
  std::vector<std::string> fields;
  bool unterminated = false;

  if (!ReadRecord(in, &fields, raw, &unterminated)) {
    return Status::MalformedInput("empty CSV input");
  }
  if (unterminated) {
    return Status::MalformedInput(
        "unterminated quoted field at EOF in CSV header");
  }
  {
    std::unordered_set<std::string> seen;
    for (const std::string& name : fields) {
      if (!seen.insert(name).second) {
        return Status::MalformedInput("duplicate CSV header column '" +
                                      name + "'");
      }
    }
  }
  auto schema = std::make_shared<Schema>(relation_name, fields);
  Table table(std::move(schema), std::move(pool));
  Counter* quarantined_rows =
      MetricsRegistry::Global().GetCounter("fixrep.quarantine.rows");

  size_t record = 0;  // 0-based data-record ordinal (header excluded)
  while (ReadRecord(in, &fields, raw, &unterminated)) {
    Status problem = Status::Ok();
    if (unterminated) {
      problem = Status::MalformedInput("unterminated quoted field at EOF");
    } else if (fields.size() != table.schema().arity()) {
      problem = Status::MalformedInput(
          "CSV record arity mismatch at row " + std::to_string(record) +
          " (got " + std::to_string(fields.size()) + ", want " +
          std::to_string(table.schema().arity()) + ")");
    } else if (FIXREP_FAULT("csv.append_row")) {
      problem = Status::Internal("injected failure appending row " +
                                 std::to_string(record));
    }
    if (!problem.ok()) {
      if (!lenient) return problem;
      quarantined_rows->Add(1);
      if (options.on_error == OnErrorPolicy::kQuarantine &&
          options.quarantine != nullptr) {
        options.quarantine->Add(Diagnostic{record, problem.code(),
                                           problem.message(), raw_storage});
      }
      ++record;
      continue;
    }
    table.AppendRowStrings(fields);
    ++record;
  }
  return table;
}

StatusOr<Table> ReadCsvFileLenient(const std::string& path,
                                   const std::string& relation_name,
                                   std::shared_ptr<ValuePool> pool,
                                   const CsvReadOptions& options) {
  std::ifstream in(path);
  if (FIXREP_FAULT("csv.open_read") || !in.good()) {
    return Status::IoError("cannot open " + path);
  }
  return ReadCsvLenient(in, relation_name, std::move(pool), options);
}

void WriteCsv(const Table& table, std::ostream& out) {
  const Schema& schema = table.schema();
  for (size_t a = 0; a < schema.arity(); ++a) {
    if (a > 0) out << ',';
    WriteField(schema.attribute_name(static_cast<AttrId>(a)), out);
  }
  out << '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << ',';
      WriteField(table.CellString(r, static_cast<AttrId>(a)), out);
    }
    out << '\n';
  }
}

Status TryWriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (FIXREP_FAULT("csv.open_write") || !out.good()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  WriteCsv(table, out);
  if (FIXREP_FAULT("csv.write_flush")) out.setstate(std::ios::badbit);
  out.flush();
  if (!out.good()) {
    return Status::IoError("write failed for " + path +
                           " (disk full or stream error)");
  }
  return Status::Ok();
}

Table ReadCsv(std::istream& in, const std::string& relation_name,
              std::shared_ptr<ValuePool> pool) {
  StatusOr<Table> result = ReadCsvLenient(in, relation_name, std::move(pool));
  FIXREP_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

Table ReadCsvFile(const std::string& path, const std::string& relation_name,
                  std::shared_ptr<ValuePool> pool) {
  StatusOr<Table> result =
      ReadCsvFileLenient(path, relation_name, std::move(pool));
  FIXREP_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

void WriteCsvFile(const Table& table, const std::string& path) {
  const Status status = TryWriteCsvFile(table, path);
  FIXREP_CHECK(status.ok()) << status.message();
}

}  // namespace fixrep
