#include "relation/csv.h"

#include <fstream>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/atomic_file.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"

namespace fixrep {

namespace {

// Parses one CSV record (handling quoted fields that may span lines).
// Returns false on EOF with no data consumed. When `raw` is non-null the
// record's text is appended verbatim (terminator stripped) for
// quarantine diagnostics. `*unterminated` reports a quoted field still
// open when the input ended.
bool ReadRecord(std::istream& in, std::vector<std::string>* fields,
                std::string* raw, bool* unterminated) {
  fields->clear();
  if (raw != nullptr) raw->clear();
  *unterminated = false;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  int c;
  while ((c = in.get()) != EOF) {
    saw_any = true;
    const char ch = static_cast<char>(c);
    if (raw != nullptr && ch != '\n' && ch != '\r') raw->push_back(ch);
    if (in_quotes) {
      if (raw != nullptr && (ch == '\n' || ch == '\r')) raw->push_back(ch);
      if (ch == '"') {
        if (in.peek() == '"') {
          in.get();
          field.push_back('"');
          if (raw != nullptr) raw->push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_quotes = true;
        break;
      case ',':
        fields->push_back(std::move(field));
        field.clear();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        fields->push_back(std::move(field));
        return true;
      default:
        field.push_back(ch);
        break;
    }
  }
  if (!saw_any) return false;
  *unterminated = in_quotes;
  fields->push_back(std::move(field));
  return true;
}

void WriteField(const std::string& field, std::ostream& out) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    out << field;
    return;
  }
  out << '"';
  for (const char ch : field) {
    if (ch == '"') out << '"';
    out << ch;
  }
  out << '"';
}

}  // namespace

CsvChunkReader::CsvChunkReader(std::istream* in,
                               std::shared_ptr<const Schema> schema,
                               std::shared_ptr<ValuePool> pool,
                               const CsvReadOptions& options)
    : in_(in),
      schema_(std::move(schema)),
      pool_(std::move(pool)),
      options_(options) {}

StatusOr<CsvChunkReader> CsvChunkReader::Open(std::istream& in,
                                              const std::string& relation_name,
                                              std::shared_ptr<ValuePool> pool,
                                              const CsvReadOptions& options) {
  std::vector<std::string> fields;
  bool unterminated = false;
  if (!ReadRecord(in, &fields, /*raw=*/nullptr, &unterminated)) {
    return Status::MalformedInput("empty CSV input");
  }
  if (unterminated) {
    return Status::MalformedInput(
        "unterminated quoted field at EOF in CSV header");
  }
  {
    std::unordered_set<std::string> seen;
    for (const std::string& name : fields) {
      if (!seen.insert(name).second) {
        return Status::MalformedInput("duplicate CSV header column '" + name +
                                      "'");
      }
    }
  }
  auto schema = std::make_shared<Schema>(relation_name, fields);
  return CsvChunkReader(&in, std::move(schema), std::move(pool), options);
}

StatusOr<size_t> CsvChunkReader::ReadChunk(Table* chunk, size_t max_rows,
                                           ColumnSidecar* sidecar) {
  FIXREP_CHECK(chunk != nullptr);
  FIXREP_CHECK_EQ(chunk->num_columns(), schema_->arity());
  if (sidecar != nullptr) {
    FIXREP_CHECK_EQ(sidecar->columns.size(), schema_->arity());
  }
  const bool lenient = options_.on_error != OnErrorPolicy::kAbort;
  // Raw text is only captured when a record can end up quarantined.
  std::string* raw =
      options_.on_error == OnErrorPolicy::kQuarantine ? &raw_ : nullptr;
  Counter* quarantined_rows =
      CurrentMetrics().GetCounter("fixrep.quarantine.rows");

  size_t appended = 0;
  bool unterminated = false;
  while (appended < max_rows) {
    if (!ReadRecord(*in_, &fields_, raw, &unterminated)) {
      at_end_ = true;
      break;
    }
    Status problem = Status::Ok();
    if (unterminated) {
      problem = Status::MalformedInput("unterminated quoted field at EOF");
    } else if (fields_.size() != schema_->arity()) {
      problem = Status::MalformedInput(
          "CSV record arity mismatch at row " + std::to_string(record_) +
          " (got " + std::to_string(fields_.size()) + ", want " +
          std::to_string(schema_->arity()) + ")");
    } else if (FIXREP_FAULT("csv.append_row")) {
      problem = Status::Internal("injected failure appending row " +
                                 std::to_string(record_));
    }
    if (!problem.ok()) {
      if (!lenient) return problem;
      quarantined_rows->Add(1);
      if (options_.on_error == OnErrorPolicy::kQuarantine &&
          options_.quarantine != nullptr) {
        options_.quarantine->Add(
            Diagnostic{record_, problem.code(), problem.message(), raw_});
      }
      ++record_;
      continue;
    }
    if (sidecar == nullptr) {
      chunk->AppendRowStrings(fields_);
    } else {
      chunk->AppendRowStringsMasked(fields_, sidecar->materialized);
      for (size_t a = 0; a < fields_.size(); ++a) {
        if (sidecar->pruned(static_cast<AttrId>(a))) {
          sidecar->columns[a].push_back(fields_[a]);
        }
      }
    }
    ++record_;
    ++appended;
  }
  return appended;
}

namespace {

// Shared by the stream and file entry points; `expected_rows` pre-sizes
// the row store when the caller can estimate it (0 = unknown).
StatusOr<Table> ReadCsvLenientImpl(std::istream& in,
                                   const std::string& relation_name,
                                   std::shared_ptr<ValuePool> pool,
                                   const CsvReadOptions& options,
                                   size_t expected_rows) {
  StatusOr<CsvChunkReader> reader =
      CsvChunkReader::Open(in, relation_name, std::move(pool), options);
  if (!reader.ok()) return reader.status();
  Table table = reader.value().MakeChunkTable();
  if (expected_rows > 0) table.Reserve(expected_rows);
  StatusOr<size_t> appended = reader.value().ReadChunk(
      &table, std::numeric_limits<size_t>::max());
  if (!appended.ok()) return appended.status();
  return table;
}

}  // namespace

StatusOr<Table> ReadCsvLenient(std::istream& in,
                               const std::string& relation_name,
                               std::shared_ptr<ValuePool> pool,
                               const CsvReadOptions& options) {
  return ReadCsvLenientImpl(in, relation_name, std::move(pool), options,
                            /*expected_rows=*/0);
}

StatusOr<Table> ReadCsvFileLenient(const std::string& path,
                                   const std::string& relation_name,
                                   std::shared_ptr<ValuePool> pool,
                                   const CsvReadOptions& options) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (FIXREP_FAULT("csv.open_read") || !in.good()) {
    return Status::IoError("cannot open " + path);
  }
  const std::streamoff file_bytes = in.tellg();
  in.seekg(0);
  // Pre-size from the file size so bulk ingestion avoids rehashes and
  // row-store regrowth. Both are deliberately low-ball estimates (CSV
  // rows are rarely under 32 bytes; distinct values are a fraction of
  // total bytes): under-reserving costs one late grow, over-reserving
  // costs resident memory.
  size_t expected_rows = 0;
  if (file_bytes > 0) {
    const size_t bytes = static_cast<size_t>(file_bytes);
    expected_rows = bytes / 32;
    pool->Reserve(bytes / 16);
  }
  return ReadCsvLenientImpl(in, relation_name, std::move(pool), options,
                            expected_rows);
}

void WriteCsvHeader(const Schema& schema, std::ostream& out) {
  for (size_t a = 0; a < schema.arity(); ++a) {
    if (a > 0) out << ',';
    WriteField(schema.attribute_name(static_cast<AttrId>(a)), out);
  }
  out << '\n';
}

void WriteCsvRows(const Table& table, std::ostream& out, size_t begin_row) {
  const Schema& schema = table.schema();
  for (size_t r = begin_row; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << ',';
      WriteField(table.CellString(r, static_cast<AttrId>(a)), out);
    }
    out << '\n';
  }
}

void WriteCsvRowsPruned(const Table& table, const ColumnSidecar& sidecar,
                        std::ostream& out) {
  const Schema& schema = table.schema();
  FIXREP_CHECK_EQ(sidecar.columns.size(), schema.arity());
  for (size_t a = 0; a < schema.arity(); ++a) {
    if (sidecar.pruned(static_cast<AttrId>(a))) {
      FIXREP_CHECK_EQ(sidecar.columns[a].size(), table.num_rows());
    }
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << ',';
      const AttrId attr = static_cast<AttrId>(a);
      if (sidecar.pruned(attr)) {
        WriteField(sidecar.columns[a][r], out);
      } else {
        WriteField(table.CellString(r, attr), out);
      }
    }
    out << '\n';
  }
}

void WriteCsv(const Table& table, std::ostream& out) {
  WriteCsvHeader(table.schema(), out);
  WriteCsvRows(table, out);
}

Status TryWriteCsvFile(const Table& table, const std::string& path) {
  if (FIXREP_FAULT("csv.open_write")) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  // Stage in path.tmp and rename into place on Commit, so a crash or a
  // failed write never leaves a truncated CSV under the final name.
  StatusOr<AtomicFile> out = AtomicFile::Create(path);
  if (!out.ok()) return out.status();
  WriteCsv(table, out->stream());
  if (FIXREP_FAULT("csv.write_flush")) {
    out->stream().setstate(std::ios::badbit);
  }
  return out->Commit();
}

Table ReadCsv(std::istream& in, const std::string& relation_name,
              std::shared_ptr<ValuePool> pool) {
  StatusOr<Table> result = ReadCsvLenient(in, relation_name, std::move(pool));
  FIXREP_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

Table ReadCsvFile(const std::string& path, const std::string& relation_name,
                  std::shared_ptr<ValuePool> pool) {
  StatusOr<Table> result =
      ReadCsvFileLenient(path, relation_name, std::move(pool));
  FIXREP_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

void WriteCsvFile(const Table& table, const std::string& path) {
  const Status status = TryWriteCsvFile(table, path);
  FIXREP_CHECK(status.ok()) << status.message();
}

}  // namespace fixrep
