#include "relation/value_pool.h"

#include "common/logging.h"

namespace fixrep {

ValueId ValuePool::Intern(std::string_view s) {
  const auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  strings_.emplace_back(s);
  const ValueId id = static_cast<ValueId>(strings_.size() - 1);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

ValueId ValuePool::Find(std::string_view s) const {
  const auto it = index_.find(s);
  return it == index_.end() ? kNullValue : it->second;
}

const std::string& ValuePool::GetString(ValueId id) const {
  FIXREP_CHECK_GE(id, 0);
  FIXREP_CHECK_LT(static_cast<size_t>(id), strings_.size());
  return strings_[static_cast<size_t>(id)];
}

}  // namespace fixrep
