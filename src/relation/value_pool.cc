#include "relation/value_pool.h"

#include "common/logging.h"

namespace fixrep {

namespace {

#ifndef NDEBUG
// Flags any second Intern that overlaps the first in time. Catches the
// misuse the class comment warns about (concurrent interning) in debug
// and sanitizer builds instead of silently corrupting the hash.
class InternGuard {
 public:
  explicit InternGuard(std::atomic<bool>* busy) : busy_(busy) {
    FIXREP_CHECK(!busy_->exchange(true, std::memory_order_acquire))
        << "concurrent ValuePool::Intern detected; the pool is "
           "single-writer (see value_pool.h)";
  }
  ~InternGuard() { busy_->store(false, std::memory_order_release); }

 private:
  std::atomic<bool>* busy_;
};
#endif

}  // namespace

ValueId ValuePool::Intern(std::string_view s) {
#ifndef NDEBUG
  const InternGuard guard(&interning_);
#endif
  const auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  strings_.emplace_back(s);
  const ValueId id = static_cast<ValueId>(strings_.size() - 1);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

void ValuePool::Reserve(size_t expected_values) {
  index_.reserve(expected_values);
}

ValueId ValuePool::Find(std::string_view s) const {
  const auto it = index_.find(s);
  return it == index_.end() ? kNullValue : it->second;
}

const std::string& ValuePool::GetString(ValueId id) const {
  FIXREP_CHECK_GE(id, 0);
  FIXREP_CHECK_LT(static_cast<size_t>(id), strings_.size());
  return strings_[static_cast<size_t>(id)];
}

}  // namespace fixrep
