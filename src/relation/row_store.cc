#include "relation/row_store.h"

#include <cstring>
#include <limits>
#include <mutex>

#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "relation/block_file.h"

namespace fixrep {

namespace {
constexpr uint32_t kNoFileBlock = std::numeric_limits<uint32_t>::max();
}  // namespace

// Spill-mode state. A block is in exactly one of three states:
//
//   kHeap    — writable heap buffer; counts against the budget. Heap
//              blocks are implicitly dirty (their disk copy, if any, is
//              stale), so evicting one costs a WriteBlock.
//   kMapped  — read-only mmap view of the block's spill-file slot; counts
//              against the budget but eviction is a free munmap.
//   kSpilled — on disk only; not addressable.
//
// Transitions (append, map-for-read, load-for-write, evict) happen only
// under `mu` and only in single-threaded phases of the pipeline; the
// parallel repair drivers pin + MakeBlockWritable a block up front so
// every worker access is the lock-free kHeap fast path in row_store.h.
// LRU stamps advance on transitions and pin/unpin, not per row access —
// per-access stamping would put a shared write on the read path.
struct RowStoreSpill {
  enum class State { kHeap, kMapped, kSpilled };

  struct Block {
    std::unique_ptr<ValueId[]> heap;
    const ValueId* mapped = nullptr;
    State state = State::kHeap;
    uint32_t file_block = kNoFileBlock;  // slot assigned on first spill
    int pins = 0;
    uint64_t stamp = 0;
  };

  RowStoreSpill(size_t arity, size_t budget)
      : block_cells(RowStore::kRowsPerBlock * arity),
        block_bytes(block_cells * sizeof(ValueId)),
        budget_bytes(budget),
        file(block_bytes) {}

  const size_t block_cells;
  const size_t block_bytes;
  const size_t budget_bytes;  // 0 = never evict
  // `mutable` members below (file included) are guarded by `mu`; const
  // methods like Readable()/SpillToDisk() transition block state.
  mutable BlockFile file;

  mutable std::mutex mu;
  mutable std::vector<Block> blocks;
  mutable uint64_t next_stamp = 1;
  mutable size_t resident = 0;       // bytes in kHeap + kMapped blocks
  mutable size_t peak_resident = 0;
  size_t pinned_blocks = 0;

  uint64_t Stamp() const { return next_stamp++; }

  void NoteResident(size_t delta) const {
    resident += delta;
    if (resident > peak_resident) peak_resident = resident;
  }

  // Floor below which eviction gives up: the tail stays writable, the
  // block being accessed must stay addressable, and pins are promises.
  size_t FloorBytes() const { return (pinned_blocks + 2) * block_bytes; }

  size_t EffectiveBudget() const {
    return budget_bytes == 0 ? std::numeric_limits<size_t>::max()
                             : std::max(budget_bytes, FloorBytes());
  }

  // All four helpers below require `mu` held.

  void SpillToDisk(size_t b) const {
    Block& blk = blocks[b];
    FIXREP_CHECK(blk.state == State::kHeap);
    if (blk.file_block == kNoFileBlock) blk.file_block = file.num_blocks();
    const Status s = file.WriteBlock(blk.file_block, blk.heap.get());
    FIXREP_CHECK(s.ok()) << "spill write failed: " << s.message();
    blk.heap.reset();
    blk.state = State::kSpilled;
    resident -= block_bytes;
  }

  void Unmap(size_t b) const {
    Block& blk = blocks[b];
    FIXREP_CHECK(blk.state == State::kMapped);
    file.UnmapBlock(blk.mapped);
    blk.mapped = nullptr;
    blk.state = State::kSpilled;
    resident -= block_bytes;
  }

  // Evicts coldest unpinned non-tail blocks (other than `keep`) until the
  // resident set fits the effective budget or no victim remains. Mapped
  // blocks go first — dropping a read-only view is free, flushing a heap
  // block costs a write.
  void EnforceBudget(size_t keep) const {
    const size_t budget = EffectiveBudget();
    const size_t tail = blocks.empty() ? 0 : blocks.size() - 1;
    while (resident > budget) {
      size_t victim = blocks.size();
      bool victim_mapped = false;
      uint64_t victim_stamp = 0;
      for (size_t b = 0; b < blocks.size(); ++b) {
        const Block& blk = blocks[b];
        if (blk.state == State::kSpilled || blk.pins > 0 || b == keep ||
            b == tail) {
          continue;
        }
        const bool mapped = blk.state == State::kMapped;
        if (victim == blocks.size() || (mapped && !victim_mapped) ||
            (mapped == victim_mapped && blk.stamp < victim_stamp)) {
          victim = b;
          victim_mapped = mapped;
          victim_stamp = blk.stamp;
        }
      }
      if (victim == blocks.size()) return;  // everything left is pinned
      if (victim_mapped) {
        Unmap(victim);
      } else {
        SpillToDisk(victim);
      }
      CurrentMetrics()
          .GetCounter("fixrep.spill.blocks_evicted")
          ->Add(1);
    }
  }

  // Returns a readable pointer to block `b`, mapping it in if spilled.
  const ValueId* Readable(size_t b) const {
    Block& blk = blocks[b];
    switch (blk.state) {
      case State::kHeap:
        return blk.heap.get();
      case State::kMapped:
        return blk.mapped;
      case State::kSpilled:
        break;
    }
    StatusOr<const void*> mapped = file.MapBlock(blk.file_block);
    FIXREP_CHECK(mapped.ok()) << "spill map failed: "
                              << mapped.status().message();
    blk.mapped = static_cast<const ValueId*>(mapped.value());
    blk.state = State::kMapped;
    blk.stamp = Stamp();
    NoteResident(block_bytes);
    EnforceBudget(b);
    return blk.mapped;
  }

  // Returns a writable heap pointer to block `b`, loading it back from
  // disk (or copying out of its mapping) if needed.
  ValueId* Writable(size_t b) {
    Block& blk = blocks[b];
    if (blk.state == State::kHeap) return blk.heap.get();
    std::unique_ptr<ValueId[]> heap(new ValueId[block_cells]);
    if (blk.state == State::kMapped) {
      std::memcpy(heap.get(), blk.mapped, block_bytes);
      file.UnmapBlock(blk.mapped);
      blk.mapped = nullptr;
    } else {
      const Status s = file.ReadBlock(blk.file_block, heap.get());
      FIXREP_CHECK(s.ok()) << "spill read failed: " << s.message();
      NoteResident(block_bytes);
    }
    blk.heap = std::move(heap);
    blk.state = State::kHeap;
    blk.stamp = Stamp();
    EnforceBudget(b);
    return blk.heap.get();
  }
};

RowStore::RowStore(size_t arity) : arity_(arity) {}
RowStore::~RowStore() = default;

RowStore::RowStore(const RowStore& other)
    : arity_(other.arity_),
      num_rows_(other.num_rows_),
      cells_(other.cells_) {
  FIXREP_CHECK(other.spill_ == nullptr)
      << "out-of-core RowStore cannot be copied";
}

RowStore& RowStore::operator=(const RowStore& other) {
  FIXREP_CHECK(other.spill_ == nullptr)
      << "out-of-core RowStore cannot be copied";
  FIXREP_CHECK(spill_ == nullptr)
      << "cannot assign over an out-of-core RowStore";
  arity_ = other.arity_;
  num_rows_ = other.num_rows_;
  cells_ = other.cells_;
  return *this;
}

RowStore::RowStore(RowStore&&) noexcept = default;
RowStore& RowStore::operator=(RowStore&&) noexcept = default;

Status RowStore::EnableSpill(size_t resident_budget_bytes) {
  FIXREP_CHECK_EQ(num_rows_, 0u) << "EnableSpill requires an empty store";
  if (arity_ == 0) {
    return Status::MalformedInput("cannot spill a zero-arity relation");
  }
  if (spill_ != nullptr) return Status::Ok();
  cells_.clear();
  cells_.shrink_to_fit();
  spill_ = std::make_unique<RowStoreSpill>(arity_, resident_budget_bytes);
  return Status::Ok();
}

void RowStore::Clear() {
  num_rows_ = 0;
  if (spill_ == nullptr) {
    cells_.clear();
    return;
  }
  std::lock_guard<std::mutex> lock(spill_->mu);
  for (size_t b = 0; b < spill_->blocks.size(); ++b) {
    if (spill_->blocks[b].state == RowStoreSpill::State::kMapped) {
      spill_->file.UnmapBlock(spill_->blocks[b].mapped);
    }
  }
  spill_->blocks.clear();
  spill_->resident = 0;
  spill_->pinned_blocks = 0;
  spill_->file.Reset();
}

size_t RowStore::bytes() const {
  if (spill_ == nullptr) return cells_.capacity() * sizeof(ValueId);
  std::lock_guard<std::mutex> lock(spill_->mu);
  return spill_->resident;
}

void RowStore::PinBlock(size_t block) {
  FIXREP_CHECK(spill_ != nullptr);
  std::lock_guard<std::mutex> lock(spill_->mu);
  FIXREP_CHECK_LT(block, spill_->blocks.size());
  RowStoreSpill::Block& blk = spill_->blocks[block];
  if (blk.pins == 0) ++spill_->pinned_blocks;
  ++blk.pins;
  blk.stamp = spill_->Stamp();
  (void)spill_->Readable(block);  // pins imply addressability
}

void RowStore::UnpinBlock(size_t block) {
  FIXREP_CHECK(spill_ != nullptr);
  std::lock_guard<std::mutex> lock(spill_->mu);
  FIXREP_CHECK_LT(block, spill_->blocks.size());
  RowStoreSpill::Block& blk = spill_->blocks[block];
  FIXREP_CHECK_GT(blk.pins, 0);
  --blk.pins;
  if (blk.pins == 0) {
    --spill_->pinned_blocks;
    spill_->EnforceBudget(block);
  }
}

void RowStore::MakeBlockWritable(size_t block) {
  FIXREP_CHECK(spill_ != nullptr);
  std::lock_guard<std::mutex> lock(spill_->mu);
  FIXREP_CHECK_LT(block, spill_->blocks.size());
  (void)spill_->Writable(block);
}

size_t RowStore::resident_bytes() const {
  if (spill_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(spill_->mu);
  return spill_->resident;
}

size_t RowStore::peak_resident_bytes() const {
  if (spill_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(spill_->mu);
  return spill_->peak_resident;
}

size_t RowStore::effective_budget_bytes() const {
  if (spill_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(spill_->mu);
  return spill_->budget_bytes == 0 ? 0 : spill_->EffectiveBudget();
}

size_t RowStore::spilled_blocks() const {
  if (spill_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(spill_->mu);
  size_t n = 0;
  for (const RowStoreSpill::Block& blk : spill_->blocks) {
    if (blk.state == RowStoreSpill::State::kSpilled) ++n;
  }
  return n;
}

size_t RowStore::spill_file_bytes() const {
  if (spill_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(spill_->mu);
  return spill_->file.bytes_on_disk();
}

const ValueId* RowStore::SpillReadPtr(size_t row) const {
  const size_t block = row / kRowsPerBlock;
  const size_t offset = (row % kRowsPerBlock) * arity_;
  // Lock-free fast path: during parallel phases every accessed block is
  // heap-resident and pinned, so no transition can race this load.
  const RowStoreSpill::Block& blk = spill_->blocks[block];
  if (blk.state == RowStoreSpill::State::kHeap) {
    return blk.heap.get() + offset;
  }
  std::lock_guard<std::mutex> lock(spill_->mu);
  return spill_->Readable(block) + offset;
}

ValueId* RowStore::SpillWritePtr(size_t row) {
  const size_t block = row / kRowsPerBlock;
  const size_t offset = (row % kRowsPerBlock) * arity_;
  RowStoreSpill::Block& blk = spill_->blocks[block];
  if (blk.state == RowStoreSpill::State::kHeap) {
    return blk.heap.get() + offset;
  }
  std::lock_guard<std::mutex> lock(spill_->mu);
  return spill_->Writable(block) + offset;
}

TupleSpan RowStore::SpillAppendUninit() {
  RowStoreSpill& sp = *spill_;
  std::lock_guard<std::mutex> lock(sp.mu);
  const size_t row = num_rows_;
  const size_t block = row / kRowsPerBlock;
  const size_t offset = (row % kRowsPerBlock) * arity_;
  if (block == sp.blocks.size()) {
    // New tail block. The previous tail just became complete and
    // evictable, so enforce the budget with the new tail protected.
    sp.blocks.emplace_back();
    RowStoreSpill::Block& blk = sp.blocks.back();
    blk.heap.reset(new ValueId[sp.block_cells]);
    std::fill(blk.heap.get(), blk.heap.get() + sp.block_cells, kNullValue);
    blk.state = RowStoreSpill::State::kHeap;
    blk.stamp = sp.Stamp();
    sp.NoteResident(sp.block_bytes);
    sp.EnforceBudget(block);
  }
  RowStoreSpill::Block& blk = sp.blocks[block];
  FIXREP_CHECK(blk.state == RowStoreSpill::State::kHeap)
      << "tail block must stay heap-resident";
  ++num_rows_;
  return TupleSpan(blk.heap.get() + offset, arity_);
}

}  // namespace fixrep
