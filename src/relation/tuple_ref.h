#ifndef FIXREP_RELATION_TUPLE_REF_H_
#define FIXREP_RELATION_TUPLE_REF_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "relation/value_pool.h"

namespace fixrep {

// An owning tuple: a dense row of interned values, indexed by AttrId.
// Since the flat-RowStore refactor this is a *scratch* type — standalone
// tuples built by rule analysis, tests, and incremental inserts — not the
// table's storage unit. Rows inside a Table live in one contiguous
// arity-strided cell array and are handed out as TupleRef / TupleSpan
// views below.
using Tuple = std::vector<ValueId>;

// Read-only, zero-copy view of one tuple: a (pointer, length) pair over
// either a Table row (pointing into the flat row store) or an owning
// Tuple. Cheap to copy and pass by value.
//
// Lifetime rules (docs/storage.md): a view borrows — it is valid only
// while the underlying storage is. For Table rows that means until the
// next AppendRow/AppendRowStrings (the flat cell vector may reallocate);
// reads and in-place writes (WriteCell / WriteRow) never invalidate
// views. Views over an owning Tuple follow the vector's usual rules.
class TupleRef {
 public:
  constexpr TupleRef() = default;
  constexpr TupleRef(const ValueId* data, size_t size)
      : data_(data), size_(size) {}
  // Implicit: any owning tuple is viewable.
  TupleRef(const Tuple& t) : data_(t.data()), size_(t.size()) {}

  ValueId operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const ValueId* data() const { return data_; }
  const ValueId* begin() const { return data_; }
  const ValueId* end() const { return data_ + size_; }

  // Materializes an owning copy (the one place a copy is explicit).
  Tuple ToTuple() const { return Tuple(data_, data_ + size_); }

  friend bool operator==(const TupleRef& a, const TupleRef& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const TupleRef& a, const TupleRef& b) {
    return !(a == b);
  }

 private:
  const ValueId* data_ = nullptr;
  size_t size_ = 0;
};

// Mutable counterpart of TupleRef: the only way engines write cells of a
// table row (Table::WriteRow) or an owning scratch Tuple. Same lifetime
// rules as TupleRef. The span itself is shallow-const: a `const
// TupleSpan` still writes through.
class TupleSpan {
 public:
  constexpr TupleSpan() = default;
  constexpr TupleSpan(ValueId* data, size_t size)
      : data_(data), size_(size) {}
  // Implicit: engines repair standalone tuples and table rows alike.
  TupleSpan(Tuple& t) : data_(t.data()), size_(t.size()) {}

  ValueId& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  ValueId* data() const { return data_; }
  ValueId* begin() const { return data_; }
  ValueId* end() const { return data_ + size_; }

  operator TupleRef() const { return TupleRef(data_, size_); }
  Tuple ToTuple() const { return Tuple(data_, data_ + size_); }

  // Overwrites the viewed cells from `src` (sizes must match — checked by
  // the caller; used to restore a tuple after a failed repair).
  void CopyFrom(TupleRef src) const {
    std::copy(src.begin(), src.end(), data_);
  }

  friend bool operator==(const TupleSpan& a, const TupleSpan& b) {
    return TupleRef(a) == TupleRef(b);
  }

 private:
  ValueId* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fixrep

#endif  // FIXREP_RELATION_TUPLE_REF_H_
