#ifndef FIXREP_RELATION_BLOCK_FILE_H_
#define FIXREP_RELATION_BLOCK_FILE_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace fixrep {

// Temp-backed spill file of fixed-size blocks — the disk side of the
// out-of-core RowStore (docs/storage.md).
//
// The file is created lazily on the first write, in $TMPDIR (default
// /tmp), as an anonymous O_TMPFILE when the kernel supports it and as an
// immediately-unlinked mkstemp file otherwise; either way nothing ever
// appears in a directory listing and the space is reclaimed the moment
// the process (or the BlockFile) dies. Block i lives at byte offset
// i * block_bytes. block_bytes must be a multiple of the page size so
// every block offset is mmap-able; the RowStore's blocks
// (kRowsPerBlock * arity * sizeof(ValueId) = arity * 16 KiB) always are.
//
// Reads come back either as a read-only shared mapping (MapBlock — the
// zero-copy path for scans) or as a pread into caller memory (ReadBlock —
// the load-for-write path). Mapped views stay valid until UnmapBlock,
// including across WriteBlock to *other* blocks; rewriting a mapped
// block's slot is legal but the mapping then observes the new bytes
// (MAP_SHARED), so the RowStore never keeps a mapping of a block it is
// rewriting.
//
// Not thread-safe: the owning RowStore serializes all calls behind its
// spill mutex.
class BlockFile {
 public:
  explicit BlockFile(size_t block_bytes);
  ~BlockFile();

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  size_t block_bytes() const { return block_bytes_; }
  // Blocks ever written (the file's length in blocks).
  uint32_t num_blocks() const { return num_blocks_; }
  size_t bytes_on_disk() const {
    return static_cast<size_t>(num_blocks_) * block_bytes_;
  }

  // Writes one full block at slot `block` (appending when block ==
  // num_blocks(), overwriting when smaller). Creates the temp file on
  // first use.
  Status WriteBlock(uint32_t block, const void* data);

  // Maps block `block` read-only and hints the kernel that the caller
  // will scan it (MADV_WILLNEED + MADV_SEQUENTIAL). The returned view is
  // valid until UnmapBlock.
  StatusOr<const void*> MapBlock(uint32_t block) const;
  void UnmapBlock(const void* addr) const;

  // Copies block `block` into caller-owned memory (the un-spill-for-write
  // path).
  Status ReadBlock(uint32_t block, void* out) const;

  // Forgets every block and truncates the file, keeping the descriptor —
  // the streaming pipeline reuses one spill file across chunks.
  void Reset();

 private:
  Status EnsureOpen();

  size_t block_bytes_;
  uint32_t num_blocks_ = 0;
  int fd_ = -1;
};

}  // namespace fixrep

#endif  // FIXREP_RELATION_BLOCK_FILE_H_
