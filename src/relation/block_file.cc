#include "relation/block_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"

namespace fixrep {

namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return (env != nullptr && *env != '\0') ? env : "/tmp";
}

std::string ErrnoText() { return std::strerror(errno); }

}  // namespace

BlockFile::BlockFile(size_t block_bytes) : block_bytes_(block_bytes) {
  FIXREP_CHECK_GT(block_bytes_, 0u);
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  FIXREP_CHECK_EQ(block_bytes_ % page, 0u)
      << "spill block size must be page-aligned for mmap";
}

BlockFile::~BlockFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status BlockFile::EnsureOpen() {
  if (fd_ >= 0) return Status::Ok();
  const std::string dir = TempDir();
  if (FIXREP_FAULT("block_file.open")) {
    return Status::IoError("injected failure opening spill file in " + dir);
  }
#ifdef O_TMPFILE
  fd_ = ::open(dir.c_str(), O_TMPFILE | O_RDWR | O_CLOEXEC, 0600);
#endif
  if (fd_ < 0) {
    // Portable fallback: a named temp file unlinked before first use.
    std::string path = dir + "/fixrep-spill-XXXXXX";
    std::vector<char> buf(path.begin(), path.end());
    buf.push_back('\0');
    fd_ = ::mkstemp(buf.data());
    if (fd_ < 0) {
      return Status::IoError("cannot create spill file in " + dir + ": " +
                             ErrnoText());
    }
    ::unlink(buf.data());
  }
  CurrentMetrics().GetCounter("fixrep.spill.files_created")->Add(1);
  return Status::Ok();
}

Status BlockFile::WriteBlock(uint32_t block, const void* data) {
  FIXREP_CHECK_LE(block, num_blocks_);
  const Status open = EnsureOpen();
  if (!open.ok()) return open;
  if (FIXREP_FAULT("block_file.write")) {
    return Status::IoError("injected failure writing spill block " +
                           std::to_string(block));
  }
  const char* src = static_cast<const char*>(data);
  size_t remaining = block_bytes_;
  off_t offset = static_cast<off_t>(block) * static_cast<off_t>(block_bytes_);
  while (remaining > 0) {
    const ssize_t n = ::pwrite(fd_, src, remaining, offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("spill write failed at block " +
                             std::to_string(block) + ": " + ErrnoText());
    }
    src += n;
    offset += n;
    remaining -= static_cast<size_t>(n);
  }
  if (block == num_blocks_) ++num_blocks_;
  CurrentMetrics()
      .GetCounter("fixrep.spill.blocks_written")
      ->Add(1);
  return Status::Ok();
}

StatusOr<const void*> BlockFile::MapBlock(uint32_t block) const {
  FIXREP_CHECK_LT(block, num_blocks_);
  if (FIXREP_FAULT("block_file.map")) {
    return Status::IoError("injected failure mapping spill block " +
                           std::to_string(block));
  }
  const off_t offset =
      static_cast<off_t>(block) * static_cast<off_t>(block_bytes_);
  void* addr =
      ::mmap(nullptr, block_bytes_, PROT_READ, MAP_SHARED, fd_, offset);
  if (addr == MAP_FAILED) {
    return Status::IoError("mmap of spill block " + std::to_string(block) +
                           " failed: " + ErrnoText());
  }
  // The store scans rows of a mapped block front to back (repair, CSV
  // emission); tell the readahead machinery so and fault the block in
  // eagerly rather than one page at a time.
  ::madvise(addr, block_bytes_, MADV_SEQUENTIAL);
  ::madvise(addr, block_bytes_, MADV_WILLNEED);
  CurrentMetrics().GetCounter("fixrep.spill.blocks_mapped")->Add(1);
  return static_cast<const void*>(addr);
}

void BlockFile::UnmapBlock(const void* addr) const {
  if (addr == nullptr) return;
  ::munmap(const_cast<void*>(addr), block_bytes_);
}

Status BlockFile::ReadBlock(uint32_t block, void* out) const {
  FIXREP_CHECK_LT(block, num_blocks_);
  if (FIXREP_FAULT("block_file.read")) {
    return Status::IoError("injected failure reading spill block " +
                           std::to_string(block));
  }
  char* dst = static_cast<char*>(out);
  size_t remaining = block_bytes_;
  off_t offset = static_cast<off_t>(block) * static_cast<off_t>(block_bytes_);
  while (remaining > 0) {
    const ssize_t n = ::pread(fd_, dst, remaining, offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("spill read failed at block " +
                             std::to_string(block) + ": " + ErrnoText());
    }
    if (n == 0) {
      return Status::IoError("spill file truncated at block " +
                             std::to_string(block));
    }
    dst += n;
    offset += n;
    remaining -= static_cast<size_t>(n);
  }
  CurrentMetrics().GetCounter("fixrep.spill.blocks_loaded")->Add(1);
  return Status::Ok();
}

void BlockFile::Reset() {
  num_blocks_ = 0;
  if (fd_ >= 0) {
    // Give the space back eagerly; the descriptor (and the O_TMPFILE
    // anonymity) is kept for the next chunk.
    (void)::ftruncate(fd_, 0);
  }
}

}  // namespace fixrep
