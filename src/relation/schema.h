#ifndef FIXREP_RELATION_SCHEMA_H_
#define FIXREP_RELATION_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixrep {

// Index of an attribute within a schema.
using AttrId = int32_t;
inline constexpr AttrId kInvalidAttr = -1;

// Set of attributes of one schema, stored as a bitmask. Schemas in this
// library are bounded to 64 attributes (checked at construction sites),
// which covers hosp (17) and uis (11) with room to spare and keeps the
// assured-attribute bookkeeping of the chase a single integer.
class AttrSet {
 public:
  AttrSet() = default;

  static AttrSet Of(const std::vector<AttrId>& attrs) {
    AttrSet s;
    for (const AttrId a : attrs) s.Add(a);
    return s;
  }

  static AttrSet FromBits(uint64_t bits) {
    AttrSet s;
    s.bits_ = bits;
    return s;
  }

  // Every attribute of an arity-`arity` schema.
  static AttrSet All(size_t arity) {
    AttrSet s;
    s.bits_ = arity >= 64 ? ~uint64_t{0} : (uint64_t{1} << arity) - 1;
    return s;
  }

  void Add(AttrId attr) { bits_ |= (uint64_t{1} << attr); }
  bool Contains(AttrId attr) const {
    return (bits_ >> attr) & uint64_t{1};
  }
  void UnionWith(const AttrSet& other) { bits_ |= other.bits_; }
  bool Intersects(const AttrSet& other) const {
    return (bits_ & other.bits_) != 0;
  }
  bool empty() const { return bits_ == 0; }
  uint64_t bits() const { return bits_; }

  bool operator==(const AttrSet&) const = default;

 private:
  uint64_t bits_ = 0;
};

// A relation schema R: an ordered list of named attributes. Attribute
// names are unique (case-sensitive). Schemas are immutable after
// construction and cheap to copy by shared_ptr at the Table level.
class Schema {
 public:
  Schema(std::string name, std::vector<std::string> attribute_names);

  const std::string& name() const { return name_; }

  // Number of attributes |R|.
  size_t arity() const { return attribute_names_.size(); }

  const std::string& attribute_name(AttrId attr) const;

  // Returns the attribute index for `attribute_name`, or kInvalidAttr if
  // the schema has no such attribute.
  AttrId FindAttribute(const std::string& attribute_name) const;

  // Like FindAttribute but CHECK-fails on a missing attribute; for code
  // paths where the attribute is statically known to exist.
  AttrId AttributeIndex(const std::string& attribute_name) const;

  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }

  bool operator==(const Schema& other) const {
    return name_ == other.name_ && attribute_names_ == other.attribute_names_;
  }

 private:
  std::string name_;
  std::vector<std::string> attribute_names_;
  std::unordered_map<std::string, AttrId> index_;
};

}  // namespace fixrep

#endif  // FIXREP_RELATION_SCHEMA_H_
