#ifndef FIXREP_RELATION_SCHEMA_H_
#define FIXREP_RELATION_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixrep {

// Index of an attribute within a schema.
using AttrId = int32_t;
inline constexpr AttrId kInvalidAttr = -1;

// A relation schema R: an ordered list of named attributes. Attribute
// names are unique (case-sensitive). Schemas are immutable after
// construction and cheap to copy by shared_ptr at the Table level.
class Schema {
 public:
  Schema(std::string name, std::vector<std::string> attribute_names);

  const std::string& name() const { return name_; }

  // Number of attributes |R|.
  size_t arity() const { return attribute_names_.size(); }

  const std::string& attribute_name(AttrId attr) const;

  // Returns the attribute index for `attribute_name`, or kInvalidAttr if
  // the schema has no such attribute.
  AttrId FindAttribute(const std::string& attribute_name) const;

  // Like FindAttribute but CHECK-fails on a missing attribute; for code
  // paths where the attribute is statically known to exist.
  AttrId AttributeIndex(const std::string& attribute_name) const;

  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }

  bool operator==(const Schema& other) const {
    return name_ == other.name_ && attribute_names_ == other.attribute_names_;
  }

 private:
  std::string name_;
  std::vector<std::string> attribute_names_;
  std::unordered_map<std::string, AttrId> index_;
};

}  // namespace fixrep

#endif  // FIXREP_RELATION_SCHEMA_H_
