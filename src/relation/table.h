#ifndef FIXREP_RELATION_TABLE_H_
#define FIXREP_RELATION_TABLE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "relation/schema.h"
#include "relation/value_pool.h"

namespace fixrep {

// One tuple: a dense row of interned values, indexed by AttrId.
using Tuple = std::vector<ValueId>;

// A relation instance: a schema plus a row store of interned tuples.
// Tables share a ValuePool so that values from different tables (dirty
// data, ground truth, master data) and from rules compare by id.
class Table {
 public:
  Table(std::shared_ptr<const Schema> schema, std::shared_ptr<ValuePool> pool);

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }
  ValuePool& pool() { return *pool_; }
  const ValuePool& pool() const { return *pool_; }
  const std::shared_ptr<ValuePool>& pool_ptr() const { return pool_; }

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_->arity(); }

  const Tuple& row(size_t i) const { return rows_[i]; }
  Tuple& mutable_row(size_t i) { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  // Appends a tuple. The tuple's arity must match the schema.
  void AppendRow(Tuple row);

  // Interns each field and appends the resulting tuple.
  void AppendRowStrings(const std::vector<std::string>& fields);

  // Cell accessors by interned id and by string.
  ValueId cell(size_t row, AttrId attr) const { return rows_[row][attr]; }
  void set_cell(size_t row, AttrId attr, ValueId value) {
    rows_[row][attr] = value;
  }
  // Returns the string form of a cell; "" for a null cell.
  const std::string& CellString(size_t row, AttrId attr) const;

  void Reserve(size_t rows) { rows_.reserve(rows); }

  // Renders a tuple as "(v1, v2, ...)" for diagnostics.
  std::string FormatRow(size_t row) const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::shared_ptr<ValuePool> pool_;
  std::vector<Tuple> rows_;
};

}  // namespace fixrep

#endif  // FIXREP_RELATION_TABLE_H_
