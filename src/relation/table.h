#ifndef FIXREP_RELATION_TABLE_H_
#define FIXREP_RELATION_TABLE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "relation/row_store.h"
#include "relation/schema.h"
#include "relation/tuple_ref.h"
#include "relation/value_pool.h"

namespace fixrep {

// A relation instance: a schema plus a flat row store of interned cells
// (relation/row_store.h — one contiguous arity-strided ValueId array, not
// a vector-of-vectors). Tables share a ValuePool so that values from
// different tables (dirty data, ground truth, master data) and from rules
// compare by id.
//
// Rows are exposed as zero-copy views: row(i) returns a read-only
// TupleRef, WriteRow(i) a mutable TupleSpan. Views borrow the store —
// valid until the next append (see tuple_ref.h); cell writes never
// invalidate them. There is deliberately no accessor that hands out an
// owning Tuple; call row(i).ToTuple() when a copy is wanted.
class Table {
 public:
  Table(std::shared_ptr<const Schema> schema, std::shared_ptr<ValuePool> pool);

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }
  ValuePool& pool() { return *pool_; }
  const ValuePool& pool() const { return *pool_; }
  const std::shared_ptr<ValuePool>& pool_ptr() const { return pool_; }

  size_t num_rows() const { return store_.num_rows(); }
  size_t num_columns() const { return store_.arity(); }

  // Zero-copy row views over the flat store.
  TupleRef row(size_t i) const { return store_.row(i); }
  TupleSpan WriteRow(size_t i) { return store_.WriteRow(i); }

  // Appends a copy of `row`. The row's arity must match the schema.
  void AppendRow(TupleRef row);
  // Overload so brace-initialized tuples keep working:
  // table.AppendRow({a, b, c}).
  void AppendRow(const Tuple& row) { AppendRow(TupleRef(row)); }

  // Interns each field and appends the resulting tuple.
  void AppendRowStrings(const std::vector<std::string>& fields);

  // Column-pruned append: interns only the fields whose attribute is in
  // `materialize`; every other cell is stored as kNullValue and its raw
  // field text is the caller's to carry (relation/csv.h ColumnSidecar).
  void AppendRowStringsMasked(const std::vector<std::string>& fields,
                              AttrSet materialize);

  // Cell accessors by interned id and by string.
  ValueId cell(size_t row, AttrId attr) const {
    return store_.cell(row, static_cast<size_t>(attr));
  }
  void WriteCell(size_t row, AttrId attr, ValueId value) {
    store_.WriteCell(row, static_cast<size_t>(attr), value);
  }
  // Returns the string form of a cell. A kNullValue cell yields a
  // reference to one static empty string whose lifetime is the process —
  // callers may hold it indefinitely.
  const std::string& CellString(size_t row, AttrId attr) const;

  // Pre-sizes the store for `rows` rows (block-aligned).
  void Reserve(size_t rows) { store_.Reserve(rows); }
  // Drops all rows, keeping the allocation (streaming chunk reuse).
  void Clear() { store_.Clear(); }

  // Switches this (empty) table's row store out-of-core with the given
  // resident budget; see RowStore::EnableSpill.
  Status EnableSpill(size_t resident_budget_bytes) {
    return store_.EnableSpill(resident_budget_bytes);
  }
  // Direct store access for block-wise drivers (pinning, telemetry).
  RowStore& store() { return store_; }
  const RowStore& store() const { return store_; }

  // True when both tables hold identical cells in identical order
  // (schema/pool identity is not compared).
  bool RowsEqual(const Table& other) const;

  // Renders a tuple as "(v1, v2, ...)" for diagnostics.
  std::string FormatRow(size_t row) const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::shared_ptr<ValuePool> pool_;
  RowStore store_;
};

}  // namespace fixrep

#endif  // FIXREP_RELATION_TABLE_H_
