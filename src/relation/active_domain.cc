#include "relation/active_domain.h"

#include <unordered_set>

namespace fixrep {

std::vector<std::vector<ValueId>> ActiveDomains(const Table& table) {
  std::vector<std::vector<ValueId>> domains(table.num_columns());
  std::vector<std::unordered_set<ValueId>> seen(table.num_columns());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < table.num_columns(); ++a) {
      const ValueId v = table.cell(r, static_cast<AttrId>(a));
      if (v != kNullValue && seen[a].insert(v).second) {
        domains[a].push_back(v);
      }
    }
  }
  return domains;
}

}  // namespace fixrep
