#include "relation/schema.h"

#include <utility>

#include "common/logging.h"

namespace fixrep {

Schema::Schema(std::string name, std::vector<std::string> attribute_names)
    : name_(std::move(name)), attribute_names_(std::move(attribute_names)) {
  for (size_t i = 0; i < attribute_names_.size(); ++i) {
    const auto [it, inserted] =
        index_.emplace(attribute_names_[i], static_cast<AttrId>(i));
    FIXREP_CHECK(inserted) << "duplicate attribute '" << attribute_names_[i]
                           << "' in schema '" << name_ << "'";
    (void)it;
  }
}

const std::string& Schema::attribute_name(AttrId attr) const {
  FIXREP_CHECK_GE(attr, 0);
  FIXREP_CHECK_LT(static_cast<size_t>(attr), attribute_names_.size());
  return attribute_names_[static_cast<size_t>(attr)];
}

AttrId Schema::FindAttribute(const std::string& attribute_name) const {
  const auto it = index_.find(attribute_name);
  return it == index_.end() ? kInvalidAttr : it->second;
}

AttrId Schema::AttributeIndex(const std::string& attribute_name) const {
  const AttrId attr = FindAttribute(attribute_name);
  FIXREP_CHECK_NE(attr, kInvalidAttr)
      << "schema '" << name_ << "' has no attribute '" << attribute_name
      << "'";
  return attr;
}

}  // namespace fixrep
