#ifndef FIXREP_RELATION_VALUE_POOL_H_
#define FIXREP_RELATION_VALUE_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace fixrep {

// Interned value identifier. All cell values, pattern constants, and facts
// are represented as ValueIds so that matching, inverted lists, and
// violation detection are integer comparisons. kNullValue represents a
// missing value and never equals any interned constant.
using ValueId = int32_t;
inline constexpr ValueId kNullValue = -1;

// Interns strings to dense ValueIds. A pool is shared by every table and
// rule set that must be comparable (e.g., the dirty table, the ground
// truth, and the rules repairing it).
//
// Not thread-safe for concurrent interning; concurrent read-only lookups
// (GetString / Find) are safe once interning has stopped. Debug builds
// enforce the single-writer rule: two Intern calls overlapping in time
// trip a CHECK (release builds compile the guard out).
class ValuePool {
 public:
  ValuePool() = default;

  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  // Returns the id for `s`, interning it if new.
  ValueId Intern(std::string_view s);

  // Pre-sizes the intern hash for `expected_values` distinct values so
  // bulk ingestion never rehashes. Callers estimate: CSV ingestion uses
  // a file-size heuristic (csv.cc).
  void Reserve(size_t expected_values);

  // Returns the id for `s` or kNullValue if it has never been interned.
  ValueId Find(std::string_view s) const;

  // Returns the string for a valid id. id must be in [0, size()).
  const std::string& GetString(ValueId id) const;

  // Number of distinct interned values.
  size_t size() const { return strings_.size(); }

 private:
  // deque keeps string addresses stable so the map can key on views into
  // the stored strings without re-allocation invalidating them.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, ValueId> index_;
#ifndef NDEBUG
  // Debug-only concurrent-interning detector (see class comment). Not a
  // lock: it aborts on overlap instead of serializing it.
  mutable std::atomic<bool> interning_{false};
#endif
};

}  // namespace fixrep

#endif  // FIXREP_RELATION_VALUE_POOL_H_
