#ifndef FIXREP_RULEGEN_SCALE_H_
#define FIXREP_RULEGEN_SCALE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "relation/schema.h"
#include "relation/value_pool.h"
#include "rules/rule_set.h"

namespace fixrep {

// Deterministic large-corpus rule generator (`fixrep_cli gen-rules
// --scale=N`). The oracle workflow in rulegen.h tops out at the few
// thousand rules real FD-violation groups yield; benches and tests for
// the on-disk rule dictionary (rules/rule_dict.h) need corpora of a
// million rules and more — deliberately bigger than what should sit
// resident next to the data being repaired.
//
// The shape mimics a CFD tableau expansion: a small set of synthetic FD
// templates (LHS attribute pairs -> RHS attribute, drawn from the
// schema) is instantiated `scale` times, each instantiation binding the
// template to rule-unique constants — evidence values for the LHS,
// known-wrong values plus the correct fact for the RHS. Constants are
// unique to their rule, which makes the corpus consistent by
// construction (no tuple can match two rules' evidence, and an applied
// fact appears in no other rule's patterns — the chase terminates after
// one application per tuple), so abort-mode repair is safe against it.
//
// Determinism: the same (schema, options) produce the same rule list in
// the same order with the same strings. Appending to a set that already
// holds organically generated rules is the intended way to build a
// corpus that both exercises real repairs and carries dictionary bulk.
struct ScaleRuleGenOptions {
  // Number of synthetic rules to emit.
  size_t scale = 1'000'000;
  uint64_t seed = 0x5ca1e;
  // FD templates instantiated round-robin; more templates spread the
  // evidence attributes wider. Capped by what the schema arity allows.
  size_t num_templates = 64;
  // Evidence cells per rule (capped at arity - 1).
  size_t evidence_arity = 2;
  // Negative patterns per rule.
  size_t negatives_per_rule = 2;
};

// Appends `options.scale` synthetic rules to `rules` (which supplies
// the schema and pool). The schema needs arity >= 2.
void AppendScaleRules(RuleSet* rules, const ScaleRuleGenOptions& options);

// Convenience: a fresh set holding only the synthetic corpus.
RuleSet GenerateScaleRules(std::shared_ptr<const Schema> schema,
                           std::shared_ptr<ValuePool> pool,
                           const ScaleRuleGenOptions& options);

}  // namespace fixrep

#endif  // FIXREP_RULEGEN_SCALE_H_
