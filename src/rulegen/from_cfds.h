#ifndef FIXREP_RULEGEN_FROM_CFDS_H_
#define FIXREP_RULEGEN_FROM_CFDS_H_

#include <vector>

#include "deps/cfd.h"
#include "relation/table.h"
#include "rules/rule_set.h"

namespace fixrep {

struct FromCfdsOptions {
  // Run ResolveByPruning on the derived set.
  bool resolve_conflicts = true;
};

// Derives fixing rules from the constant rows of CFD tableaux — a first
// cut at the paper's second future-work item ("interaction between
// fixing rules and other data quality rules, such as CFDs").
//
// A constant tableau row (tp[X] constants | tp[A] = b) already carries
// an evidence pattern and a fact; what a CFD lacks is the negative
// patterns that authorize an automatic repair. Those are harvested from
// the data: the values observed at A among tuples matching tp[X] that
// differ from b are exactly the CFD's constant-RHS violations, and they
// become the rule's negative patterns. Rows with wildcards (in the LHS
// or RHS) express variable constraints and are skipped — they detect
// violations but do not name a fact.
RuleSet RulesFromCfds(const Table& data, const std::vector<Cfd>& cfds,
                      const FromCfdsOptions& options = {});

}  // namespace fixrep

#endif  // FIXREP_RULEGEN_FROM_CFDS_H_
