#include "rulegen/discovery.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/log.h"
#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "deps/violation.h"
#include "rules/resolution.h"

namespace fixrep {

namespace {

struct Candidate {
  FixingRule rule;
  size_t support = 0;
  size_t fd_index = 0;
  std::vector<ValueId> lhs_values;
};

}  // namespace

RuleSet DiscoverRules(const Table& dirty,
                      const std::vector<FunctionalDependency>& fds,
                      const DiscoveryOptions& options) {
  FIXREP_TRACE_SPAN("rulegen.discovery");
  const auto normalized = NormalizeToSingleRhs(fds);
  size_t groups_examined = 0;
  std::vector<Candidate> candidates;
  for (size_t fd_index = 0; fd_index < normalized.size(); ++fd_index) {
    const auto& fd = normalized[fd_index];
    const AttrId target = fd.rhs[0];
    const auto partition = PartitionBy(dirty, fd.lhs);

    // First pass: the consensus (majority) value of every group, and —
    // for the conservative mode — the set of all consensus values of
    // this FD.
    struct GroupVote {
      ValueId majority = kNullValue;
      size_t majority_count = 0;
      size_t runner_up = 0;
      std::unordered_map<ValueId, size_t> histogram;
    };
    std::unordered_map<const std::vector<ValueId>*, GroupVote> votes;
    std::unordered_set<ValueId> consensus_values;
    for (const auto& [lhs_values, rows] : partition) {
      GroupVote vote;
      for (const size_t row : rows) ++vote.histogram[dirty.cell(row, target)];
      for (const auto& [value, count] : vote.histogram) {
        if (count > vote.majority_count ||
            (count == vote.majority_count && value < vote.majority)) {
          vote.runner_up = vote.majority_count;
          vote.majority = value;
          vote.majority_count = count;
        } else if (count > vote.runner_up) {
          vote.runner_up = count;
        }
      }
      if (vote.majority != kNullValue) consensus_values.insert(vote.majority);
      votes.emplace(&lhs_values, std::move(vote));
    }

    for (const auto& [lhs_values, rows] : partition) {
      ++groups_examined;
      if (rows.size() < options.min_support) continue;
      const GroupVote& vote = votes.at(&lhs_values);
      const ValueId majority = vote.majority;
      if (majority == kNullValue) continue;
      if (static_cast<double>(vote.majority_count) / rows.size() <
          options.min_confidence) {
        continue;
      }
      if (vote.majority_count < vote.runner_up + options.min_margin) {
        continue;
      }
      // Minority values are the evidence of errors: negative patterns —
      // minus, in conservative mode, values that are correct somewhere
      // else (another group's consensus), which are ambiguous here.
      std::vector<ValueId> negatives;
      for (const auto& [value, count] : vote.histogram) {
        if (value == majority || value == kNullValue) continue;
        if (options.exclude_foreign_consensus &&
            consensus_values.count(value) > 0) {
          continue;
        }
        negatives.push_back(value);
      }
      if (negatives.empty()) continue;
      std::sort(negatives.begin(), negatives.end());

      Candidate candidate;
      candidate.support = rows.size();
      candidate.fd_index = fd_index;
      candidate.lhs_values = lhs_values;
      candidate.rule.evidence_attrs = fd.lhs;
      candidate.rule.evidence_values = lhs_values;
      candidate.rule.target = target;
      candidate.rule.negative_patterns = std::move(negatives);
      candidate.rule.fact = majority;
      candidates.push_back(std::move(candidate));
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.fd_index != b.fd_index) return a.fd_index < b.fd_index;
              if (a.lhs_values != b.lhs_values) {
                return a.lhs_values < b.lhs_values;
              }
              return a.rule.target < b.rule.target;
            });

  RuleSet rules(dirty.schema_ptr(), dirty.pool_ptr());
  for (const auto& candidate : candidates) {
    if (rules.size() >= options.max_rules) break;
    rules.Add(candidate.rule);
  }
  if (options.resolve_conflicts) ResolveByPruning(&rules);

  auto& registry = CurrentMetrics();
  registry.GetCounter("fixrep.discovery.runs")->Add(1);
  registry.GetCounter("fixrep.discovery.groups_examined")
      ->Add(groups_examined);
  registry.GetCounter("fixrep.discovery.candidates")->Add(candidates.size());
  registry.GetCounter("fixrep.discovery.rules_emitted")->Add(rules.size());
  FIXREP_LOG(Debug) << "rule discovery" << Kv("fds", normalized.size())
                    << Kv("groups", groups_examined)
                    << Kv("candidates", candidates.size())
                    << Kv("rules", rules.size());
  return rules;
}

}  // namespace fixrep
