#include "rulegen/scale.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "rules/fixing_rule.h"

namespace fixrep {

namespace {

// Compact base-36 rendering keeps a million-rule corpus's string pool in
// the tens of megabytes instead of hundreds.
std::string Base36(uint64_t v) {
  static const char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  char buf[16];
  size_t n = 0;
  do {
    buf[n++] = kDigits[v % 36];
    v /= 36;
  } while (v != 0);
  std::string out;
  out.reserve(n);
  while (n > 0) out.push_back(buf[--n]);
  return out;
}

struct FdTemplate {
  std::vector<AttrId> lhs;  // sorted
  AttrId rhs = kInvalidAttr;
};

}  // namespace

void AppendScaleRules(RuleSet* rules, const ScaleRuleGenOptions& options) {
  FIXREP_CHECK(rules != nullptr);
  const Schema& schema = rules->schema();
  const size_t arity = schema.arity();
  FIXREP_CHECK_GE(arity, 2u);
  ValuePool& pool = rules->pool();
  Rng rng(options.seed);

  const size_t evidence_arity =
      std::max<size_t>(1, std::min(options.evidence_arity, arity - 1));
  const size_t negatives =
      std::max<size_t>(1, options.negatives_per_rule);
  const size_t num_templates = std::max<size_t>(1, options.num_templates);

  // Synthetic FD templates (LHS attribute set -> RHS attribute), drawn
  // once up front so instantiation below is a flat loop.
  std::vector<FdTemplate> templates;
  templates.reserve(num_templates);
  std::vector<AttrId> attrs(arity);
  for (size_t a = 0; a < arity; ++a) attrs[a] = static_cast<AttrId>(a);
  for (size_t t = 0; t < num_templates; ++t) {
    std::vector<AttrId> deck = attrs;
    rng.Shuffle(&deck);
    FdTemplate tmpl;
    tmpl.rhs = deck[0];
    tmpl.lhs.assign(deck.begin() + 1,
                    deck.begin() + 1 + static_cast<long>(evidence_arity));
    std::sort(tmpl.lhs.begin(), tmpl.lhs.end());
    templates.push_back(std::move(tmpl));
  }

  // One instantiation per rule, round-robin over the templates. Every
  // constant embeds the rule's global ordinal, so it appears in exactly
  // one rule — the consistency-by-construction property documented in
  // the header.
  const size_t base = rules->size();
  for (size_t i = 0; i < options.scale; ++i) {
    const FdTemplate& tmpl = templates[i % templates.size()];
    const std::string tag = Base36(base + i);
    FixingRule rule;
    rule.target = tmpl.rhs;
    rule.evidence_attrs = tmpl.lhs;
    rule.evidence_values.reserve(tmpl.lhs.size());
    for (size_t e = 0; e < tmpl.lhs.size(); ++e) {
      rule.evidence_values.push_back(pool.Intern("sv" + tag + "e" +
                                                 Base36(e)));
    }
    rule.negative_patterns.reserve(negatives);
    for (size_t n = 0; n < negatives; ++n) {
      rule.negative_patterns.push_back(pool.Intern("sn" + tag + "x" +
                                                   Base36(n)));
    }
    std::sort(rule.negative_patterns.begin(), rule.negative_patterns.end());
    rule.fact = pool.Intern("sf" + tag);
    rules->Add(std::move(rule));
  }
}

RuleSet GenerateScaleRules(std::shared_ptr<const Schema> schema,
                           std::shared_ptr<ValuePool> pool,
                           const ScaleRuleGenOptions& options) {
  RuleSet rules(std::move(schema), std::move(pool));
  AppendScaleRules(&rules, options);
  return rules;
}

}  // namespace fixrep
