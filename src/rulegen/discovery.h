#ifndef FIXREP_RULEGEN_DISCOVERY_H_
#define FIXREP_RULEGEN_DISCOVERY_H_

#include <cstdint>
#include <vector>

#include "deps/fd.h"
#include "relation/table.h"
#include "rules/rule_set.h"

namespace fixrep {

// Automatic fixing-rule discovery from dirty data alone — the paper's
// first future-work item ("we are planning to design algorithms to
// automatically discover fixing rules"). No ground truth, no expert:
// for each FD X -> A and each X-group in the dirty data, if one A value
// dominates the group strongly enough, it is taken as the fact and the
// minority values become negative patterns.
//
// This trades the oracle's certainty for a confidence threshold: a
// discovered fact is wrong exactly when errors outvote the truth inside
// a group, so precision degrades gracefully with the noise rate (see
// bench_ablation_discovery).
struct DiscoveryOptions {
  size_t max_rules = 1000;
  // Minimum rows in the X-group.
  size_t min_support = 3;
  // The majority value must cover at least this fraction of the group...
  double min_confidence = 0.8;
  // ...and win by at least this many rows over the runner-up.
  size_t min_margin = 2;
  // Run ResolveByPruning so the result is strictly consistent.
  bool resolve_conflicts = true;
  // Conservative mode (default): a minority value that is itself the
  // consensus of some other group of the same FD is NOT taken as a
  // negative pattern — it may be a correct value that strayed in via a
  // corrupted evidence cell, the paper's (China, Tokyo) ambiguity, which
  // fixing rules deliberately refuse to judge. Turning this off admits
  // those values, buying recall on active-domain errors at a real
  // precision cost (quantified in bench_ablation).
  bool exclude_foreign_consensus = true;
};

// Discovers rules for `fds` from `dirty`. Deterministic.
RuleSet DiscoverRules(const Table& dirty,
                      const std::vector<FunctionalDependency>& fds,
                      const DiscoveryOptions& options = {});

}  // namespace fixrep

#endif  // FIXREP_RULEGEN_DISCOVERY_H_
