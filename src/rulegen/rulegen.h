#ifndef FIXREP_RULEGEN_RULEGEN_H_
#define FIXREP_RULEGEN_RULEGEN_H_

#include <cstdint>
#include <vector>

#include "deps/fd.h"
#include "relation/table.h"
#include "rules/rule_set.h"

namespace fixrep {

// Controls the Section 7.1 rule-generation workflow. The "expert" of the
// paper is played by an oracle with access to the clean data: seeds come
// from FD violation groups in the dirty data (evidence = the group's LHS
// projection, fact = the clean RHS value, negative patterns = observed
// wrong values), then negative patterns are enriched with further
// known-wrong values, mimicking extraction from domain tables.
struct RuleGenOptions {
  // Keep the `max_rules` candidates with the largest support (clean rows
  // sharing the evidence pattern), as the paper keeps the most useful
  // rules (1000 for hosp, 100 for uis).
  size_t max_rules = 1000;
  // Extra negative patterns added to each rule beyond the observed ones.
  size_t extra_negatives_per_rule = 2;
  // Each enrichment value comes from the attribute's clean active domain
  // with this probability, else from the pool of out-of-domain values
  // observed in the dirty column (typos and strays).
  double active_domain_enrich_probability = 0.3;
  // Evidence patterns must repeat at least this often in the clean data.
  size_t min_support = 2;
  // Run ResolveByPruning on the generated set so the result is
  // guaranteed consistent (Section 5 workflow step 3).
  bool resolve_conflicts = true;
  uint64_t seed = 0x9e37;
};

// Generates fixing rules for `fds` from a (clean, dirty) pair sharing one
// pool and schema. Deterministic given options.seed.
RuleSet GenerateRules(const Table& clean, const Table& dirty,
                      const std::vector<FunctionalDependency>& fds,
                      const RuleGenOptions& options);

}  // namespace fixrep

#endif  // FIXREP_RULEGEN_RULEGEN_H_
