#include "rulegen/rulegen.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "deps/violation.h"
#include "relation/active_domain.h"
#include "rules/resolution.h"

namespace fixrep {

namespace {

struct Candidate {
  FixingRule rule;
  size_t support = 0;  // clean rows sharing the evidence pattern
  size_t fd_index = 0;
  std::vector<ValueId> lhs_values;  // deterministic tie-break
};

// Values seen in the dirty column of `attr` that never occur in the
// clean column: typos and other out-of-domain strays. These are safe
// negative patterns for any rule targeting `attr` (they are wrong in
// every context).
std::vector<ValueId> OutOfDomainValues(const Table& clean,
                                       const Table& dirty, AttrId attr) {
  std::unordered_set<ValueId> clean_values;
  for (size_t r = 0; r < clean.num_rows(); ++r) {
    clean_values.insert(clean.cell(r, attr));
  }
  std::unordered_set<ValueId> seen;
  std::vector<ValueId> out;
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    const ValueId v = dirty.cell(r, attr);
    if (v != kNullValue && clean_values.count(v) == 0 &&
        seen.insert(v).second) {
      out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

RuleSet GenerateRules(const Table& clean, const Table& dirty,
                      const std::vector<FunctionalDependency>& fds,
                      const RuleGenOptions& options) {
  FIXREP_CHECK(clean.pool_ptr() == dirty.pool_ptr())
      << "clean and dirty tables must share a value pool";
  FIXREP_CHECK_EQ(clean.num_rows(), dirty.num_rows());
  Rng rng(options.seed);
  const auto normalized = NormalizeToSingleRhs(fds);
  const auto clean_domains = ActiveDomains(clean);

  std::vector<Candidate> candidates;
  for (size_t fd_index = 0; fd_index < normalized.size(); ++fd_index) {
    const auto& fd = normalized[fd_index];
    const AttrId target = fd.rhs[0];
    const auto clean_partition = PartitionBy(clean, fd.lhs);
    const auto dirty_partition = PartitionBy(dirty, fd.lhs);
    const auto out_of_domain = OutOfDomainValues(clean, dirty, target);

    for (const auto& [lhs_values, clean_rows] : clean_partition) {
      if (clean_rows.size() < options.min_support) continue;
      // The clean data satisfies the FD, so the group's RHS value is
      // unique: it becomes the rule's fact.
      const ValueId fact = clean.cell(clean_rows[0], target);

      // Observed wrong values: what the dirty data carries for this
      // evidence pattern besides the fact (the violations an expert
      // would be shown). The expert certifies the evidence before
      // blaming the target (cf. editing rules, where the user asserts
      // the LHS is correct): a row whose evidence cells are themselves
      // corrupted merely *looks* like a member of this group, and its
      // target value — correct in its true group — must not be recorded
      // as a negative pattern. The oracle plays that expert by checking
      // the row's evidence against the ground truth.
      std::vector<ValueId> negatives;
      const auto dirty_it = dirty_partition.find(lhs_values);
      if (dirty_it != dirty_partition.end()) {
        std::unordered_set<ValueId> seen;
        for (const size_t row : dirty_it->second) {
          bool evidence_clean = true;
          for (size_t k = 0; k < fd.lhs.size(); ++k) {
            if (clean.cell(row, fd.lhs[k]) != lhs_values[k]) {
              evidence_clean = false;
              break;
            }
          }
          if (!evidence_clean) continue;
          const ValueId v = dirty.cell(row, target);
          if (v != fact && v != kNullValue && seen.insert(v).second) {
            negatives.push_back(v);
          }
        }
      }

      // Enrichment (Section 7.1 "rule enrichment"): enlarge the negative
      // patterns with further known-wrong values.
      for (size_t e = 0; e < options.extra_negatives_per_rule; ++e) {
        const bool from_active_domain =
            rng.Bernoulli(options.active_domain_enrich_probability) ||
            out_of_domain.empty();
        const auto& source = from_active_domain
                                 ? clean_domains[static_cast<size_t>(target)]
                                 : out_of_domain;
        if (source.size() < 2) continue;
        for (int attempt = 0; attempt < 8; ++attempt) {
          const ValueId v = source[rng.Uniform(source.size())];
          if (v != fact &&
              std::find(negatives.begin(), negatives.end(), v) ==
                  negatives.end()) {
            negatives.push_back(v);
            break;
          }
        }
      }
      if (negatives.empty()) continue;

      Candidate candidate;
      candidate.support = clean_rows.size();
      candidate.fd_index = fd_index;
      candidate.lhs_values = lhs_values;
      FixingRule& rule = candidate.rule;
      // fd.lhs is sorted, so evidence attrs/values are in order.
      rule.evidence_attrs = fd.lhs;
      rule.evidence_values = lhs_values;
      rule.target = target;
      std::sort(negatives.begin(), negatives.end());
      rule.negative_patterns = std::move(negatives);
      rule.fact = fact;
      candidates.push_back(std::move(candidate));
    }
  }

  // Most useful rules first: by support, then deterministic tie-breaks.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.fd_index != b.fd_index) return a.fd_index < b.fd_index;
              if (a.lhs_values != b.lhs_values) {
                return a.lhs_values < b.lhs_values;
              }
              return a.rule.target < b.rule.target;
            });

  RuleSet rules(clean.schema_ptr(), clean.pool_ptr());
  for (const auto& candidate : candidates) {
    if (rules.size() >= options.max_rules) break;
    rules.Add(candidate.rule);
  }

  if (options.resolve_conflicts) ResolveByPruning(&rules);
  return rules;
}

}  // namespace fixrep
