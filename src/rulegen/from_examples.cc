#include "rulegen/from_examples.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "rules/resolution.h"

namespace fixrep {

RuleSet LearnRulesFromExamples(
    std::shared_ptr<const Schema> schema, std::shared_ptr<ValuePool> pool,
    const std::vector<CorrectionExample>& examples,
    const std::vector<FunctionalDependency>& fd_hints,
    const FromExamplesOptions& options) {
  const auto hints = NormalizeToSingleRhs(fd_hints);
  // Key: (evidence attrs, evidence values, target, fact); value: the
  // union of certified-wrong values.
  using RuleKey = std::tuple<std::vector<AttrId>, std::vector<ValueId>,
                             AttrId, ValueId>;
  std::map<RuleKey, std::vector<ValueId>> merged;

  for (const auto& example : examples) {
    FIXREP_CHECK_EQ(example.dirty.size(), schema->arity());
    FIXREP_CHECK_EQ(example.corrected.size(), schema->arity());
    // Attributes the user touched.
    std::vector<AttrId> changed;
    for (size_t a = 0; a < schema->arity(); ++a) {
      if (example.dirty[a] != example.corrected[a]) {
        changed.push_back(static_cast<AttrId>(a));
      }
    }
    for (const AttrId target : changed) {
      const ValueId wrong = example.dirty[target];
      const ValueId fact = example.corrected[target];
      if (wrong == kNullValue || fact == kNullValue) continue;
      for (const auto& hint : hints) {
        if (hint.rhs[0] != target) continue;
        // Evidence values come from the CORRECTED tuple: every corrected
        // cell is user-certified, whether the user left it alone or
        // rewrote it. Taking corrected values for evidence the user also
        // fixed is what lets learned rules chain (the Fig. 8 cascade:
        // the city rule's capital=Beijing evidence holds only after the
        // capital rule fires).
        std::vector<ValueId> evidence_values;
        bool has_null = false;
        for (const AttrId a : hint.lhs) {
          const ValueId v = example.corrected[a];
          has_null |= (v == kNullValue);
          evidence_values.push_back(v);
        }
        if (has_null) continue;
        merged[RuleKey(hint.lhs, std::move(evidence_values), target, fact)]
            .push_back(wrong);
      }
    }
  }

  RuleSet rules(schema, std::move(pool));
  for (auto& [key, negatives] : merged) {
    std::sort(negatives.begin(), negatives.end());
    negatives.erase(std::unique(negatives.begin(), negatives.end()),
                    negatives.end());
    // A contradictory example set can certify the fact itself as wrong
    // under a different example; drop such values rather than the rule.
    const auto& [evidence_attrs, evidence_values, target, fact] = key;
    std::vector<ValueId> filtered;
    for (const ValueId v : negatives) {
      if (v != fact) filtered.push_back(v);
    }
    if (filtered.empty()) continue;
    FixingRule rule;
    rule.evidence_attrs = evidence_attrs;
    rule.evidence_values = evidence_values;
    rule.target = target;
    rule.negative_patterns = std::move(filtered);
    rule.fact = fact;
    rules.Add(std::move(rule));
  }
  if (options.resolve_conflicts) ResolveByPruning(&rules);
  return rules;
}

}  // namespace fixrep
