#ifndef FIXREP_RULEGEN_FROM_EXAMPLES_H_
#define FIXREP_RULEGEN_FROM_EXAMPLES_H_

#include <memory>
#include <vector>

#include "deps/fd.h"
#include "relation/table.h"
#include "rules/rule_set.h"

namespace fixrep {

// One user-provided correction example: a dirty tuple and the tuple the
// user corrected it to.
struct CorrectionExample {
  Tuple dirty;
  Tuple corrected;
};

struct FromExamplesOptions {
  // Run ResolveByPruning on the learned set.
  bool resolve_conflicts = true;
};

// Learns fixing rules from correction examples, in the spirit of the
// learning-transformations-from-examples line of work the paper cites
// ([27], Singh & Gulwani) and its Section 7.1 seed workflow.
//
// For every corrected cell B (old value v -> new value f), each FD hint
// X -> ... with B in its RHS yields a candidate rule
// ((X, corrected[X]), (B, {v})) -> f: the corrected tuple is
// user-certified, so corrected[X] is trusted evidence, v a
// certified-wrong value, and f the certified fact. Evidence attributes
// the user also corrected are fine — their corrected values let learned
// rules chain during the chase, exactly like the paper's Fig. 8 cascade.
// Candidates with identical (evidence, target, fact) are merged by
// unioning their negative patterns, which is how a handful of examples
// grows into rules with rich negative-pattern sets.
//
// Examples whose corrected cell has no applicable FD hint are skipped
// (nothing justifies an evidence pattern); contradictory examples are
// reconciled by the resolution pass.
RuleSet LearnRulesFromExamples(
    std::shared_ptr<const Schema> schema, std::shared_ptr<ValuePool> pool,
    const std::vector<CorrectionExample>& examples,
    const std::vector<FunctionalDependency>& fd_hints,
    const FromExamplesOptions& options = {});

}  // namespace fixrep

#endif  // FIXREP_RULEGEN_FROM_EXAMPLES_H_
