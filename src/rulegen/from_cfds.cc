#include "rulegen/from_cfds.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "rules/resolution.h"

namespace fixrep {

RuleSet RulesFromCfds(const Table& data, const std::vector<Cfd>& cfds,
                      const FromCfdsOptions& options) {
  RuleSet rules(data.schema_ptr(), data.pool_ptr());
  for (const auto& cfd : cfds) {
    FIXREP_CHECK_EQ(cfd.embedded.rhs.size(), 1u);
    const AttrId target = cfd.embedded.rhs[0];
    for (const auto& pattern : cfd.tableau) {
      if (pattern.rhs == kCfdWildcard) continue;
      const bool fully_constant =
          std::none_of(pattern.lhs.begin(), pattern.lhs.end(),
                       [](ValueId v) { return v == kCfdWildcard; });
      if (!fully_constant) continue;
      // Harvest negative patterns: values at the target attribute among
      // tuples matching the (all-constant) LHS pattern.
      std::unordered_set<ValueId> seen;
      std::vector<ValueId> negatives;
      for (size_t r = 0; r < data.num_rows(); ++r) {
        bool matches = true;
        for (size_t i = 0; i < cfd.embedded.lhs.size(); ++i) {
          if (data.cell(r, cfd.embedded.lhs[i]) != pattern.lhs[i]) {
            matches = false;
            break;
          }
        }
        if (!matches) continue;
        const ValueId v = data.cell(r, target);
        if (v != pattern.rhs && v != kNullValue && seen.insert(v).second) {
          negatives.push_back(v);
        }
      }
      if (negatives.empty()) continue;
      std::sort(negatives.begin(), negatives.end());
      FixingRule rule;
      rule.evidence_attrs = cfd.embedded.lhs;
      rule.evidence_values = pattern.lhs;
      rule.target = target;
      rule.negative_patterns = std::move(negatives);
      rule.fact = pattern.rhs;
      rules.Add(std::move(rule));
    }
  }
  if (options.resolve_conflicts) ResolveByPruning(&rules);
  return rules;
}

}  // namespace fixrep
