// Fig. 10 — repair accuracy of Fix (fixing rules, lRepair) vs the Heu
// and Csm FD-repair baselines.
//
//  (a)/(b)  hosp: precision/recall while the typo share of a fixed 10%
//           noise rate sweeps 0%..100% (the remainder are active-domain
//           errors);
//  (e)/(f)  uis: the same sweep;
//  (c)/(d)  hosp: recall/precision while the rule count sweeps
//           100..1000 (noise fixed at 10%, half typos);
//  (g)/(h)  uis: rule count 10..100.
//
// Paper shape: Fix precision stays high and flat; Heu/Csm precision
// falls as active-domain errors dominate (left side of the sweep);
// Fix recall is below the heuristics'; recall grows with more rules
// while precision stays high; all uis recalls are very low.

#include <iostream>
#include <string>
#include <vector>

#include "baselines/csm.h"
#include "baselines/heu.h"
#include "bench_util.h"
#include "eval/metrics.h"
#include "eval/text_table.h"
#include "repair/lrepair.h"

namespace fixrep::bench {
namespace {

struct Row {
  Accuracy fix, heu, csm;
};

Row RunAllMethods(const Workload& workload, const RuleSet& rules) {
  Row row;
  {
    Table repaired = workload.dirty;
    FastRepairer repairer(&rules);
    repairer.RepairTable(&repaired);
    row.fix = EvaluateRepair(workload.data.clean, workload.dirty, repaired);
  }
  {
    Table repaired = workload.dirty;
    HeuRepairer heu(workload.data.fds);
    heu.Repair(&repaired);
    row.heu = EvaluateRepair(workload.data.clean, workload.dirty, repaired);
  }
  {
    Table repaired = workload.dirty;
    CsmRepairer csm(workload.data.fds);
    csm.Repair(&repaired);
    row.csm = EvaluateRepair(workload.data.clean, workload.dirty, repaired);
  }
  return row;
}

void TypoShareSweep(const char* name, bool is_hosp, size_t rows,
                    size_t max_rules) {
  std::cout << "\n-- Fig. 10(" << (is_hosp ? "a,b" : "e,f") << ") " << name
            << ": accuracy vs typo share (noise 10%) --\n";
  TextTable table({"typo %", "Fix P", "Heu P", "Csm P", "Fix R", "Heu R",
                   "Csm R"});
  for (int typo_percent = 0; typo_percent <= 100; typo_percent += 10) {
    const double typo_share = typo_percent / 100.0;
    const Workload workload =
        is_hosp ? MakeHospWorkload(rows, max_rules, 0.10, typo_share)
                : MakeUisWorkload(rows, max_rules, 0.10, typo_share);
    const Row row = RunAllMethods(workload, workload.rules);
    table.AddRow({std::to_string(typo_percent),
                  FormatDouble(row.fix.precision()),
                  FormatDouble(row.heu.precision()),
                  FormatDouble(row.csm.precision()),
                  FormatDouble(row.fix.recall()),
                  FormatDouble(row.heu.recall()),
                  FormatDouble(row.csm.recall())});
  }
  table.Print(std::cout);
}

void RuleCountSweep(const char* name, bool is_hosp, size_t rows,
                    size_t max_rules, size_t step) {
  std::cout << "\n-- Fig. 10(" << (is_hosp ? "c,d" : "g,h") << ") " << name
            << ": accuracy vs rule count (noise 10%, 50% typos) --\n";
  const Workload workload =
      is_hosp ? MakeHospWorkload(rows, max_rules, 0.10, 0.5)
              : MakeUisWorkload(rows, max_rules, 0.10, 0.5);
  // Heu/Csm do not depend on the rule count: horizontal lines.
  const Row baseline = RunAllMethods(workload, workload.rules);
  TextTable table({"rules", "Fix P", "Fix R", "Heu P (flat)",
                   "Heu R (flat)", "Csm P (flat)", "Csm R (flat)"});
  for (size_t count = step; count <= max_rules; count += step) {
    const RuleSet prefix = workload.rules.Prefix(count);
    Table repaired = workload.dirty;
    FastRepairer repairer(&prefix);
    repairer.RepairTable(&repaired);
    const Accuracy fix =
        EvaluateRepair(workload.data.clean, workload.dirty, repaired);
    table.AddRow({std::to_string(prefix.size()),
                  FormatDouble(fix.precision()), FormatDouble(fix.recall()),
                  FormatDouble(baseline.heu.precision()),
                  FormatDouble(baseline.heu.recall()),
                  FormatDouble(baseline.csm.precision()),
                  FormatDouble(baseline.csm.recall())});
  }
  table.Print(std::cout);
}

void Run() {
  const ExperimentScale scale = GetExperimentScale();
  std::cout << "Fig. 10 reproduction — " << DescribeScale(scale) << "\n";
  TypoShareSweep("hosp", true, scale.hosp_rows, scale.hosp_rules);
  TypoShareSweep("uis", false, scale.uis_rows, scale.uis_rules);
  RuleCountSweep("hosp", true, scale.hosp_rows, scale.hosp_rules, 100);
  RuleCountSweep("uis", false, scale.uis_rows, scale.uis_rules, 10);
  std::cout << "\nShape check vs paper: Fix P high and flat; Heu/Csm P "
               "rise with typo share; Fix R below Heu/Csm; more rules -> "
               "higher Fix R at stable P; uis recalls low throughout.\n";
}

}  // namespace
}  // namespace fixrep::bench

int main() {
  fixrep::bench::Run();
  return 0;
}
