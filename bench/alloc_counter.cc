// Global allocation counting for the benches. Every bench binary links
// this TU (bench/CMakeLists.txt), so all operator new/delete traffic
// funnels through one relaxed atomic counter. Unlike wall-clock, the
// count is deterministic for a deterministic workload, which makes the
// "allocations" entries in BENCH_repair.json diffable across PRs: the
// flat RowStore shows up as a step drop in allocations per repaired row.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocation_count{0};

void* CountedNew(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedNew(std::size_t size, std::align_val_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  const auto alignment = static_cast<std::size_t>(align);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded =
      (std::max<std::size_t>(size, 1) + alignment - 1) / alignment *
      alignment;
  void* p = std::aligned_alloc(alignment, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

namespace fixrep::bench {

// Declared in bench_util.h.
std::uint64_t AllocationCount() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

}  // namespace fixrep::bench

void* operator new(std::size_t size) { return CountedNew(size); }
void* operator new[](std::size_t size) { return CountedNew(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedNew(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedNew(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
