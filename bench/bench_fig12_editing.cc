// Fig. 12 — fixing rules vs (automated) editing rules, on hosp with 100
// rules and 10% noise.
//
//  (a) errors corrected per fixing rule. Each correction by rule phi
//      would have cost one user interaction under editing rules, so a
//      rule fixing 50+ tuples stands for 50+ saved prompts.
//  (b) precision/recall of Fix vs Edit, where Edit strips the negative
//      patterns and auto-answers "yes" (the paper's simulation).

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/editing.h"
#include "bench_util.h"
#include "eval/metrics.h"
#include "eval/text_table.h"
#include "repair/lrepair.h"

namespace fixrep::bench {
namespace {

void PerRuleFixes(const Workload& workload) {
  FastRepairer repairer(&workload.rules);
  Table repaired = workload.dirty;
  repairer.RepairTable(&repaired);
  std::vector<size_t> fixes = repairer.stats().per_rule_applications;
  std::sort(fixes.rbegin(), fixes.rend());
  std::cout << "\n-- Fig. 12(a): errors corrected per fixing rule ("
            << workload.rules.size() << " rules) --\n";
  TextTable table({"rule rank", "tuples repaired",
                   "user interactions an editing rule would need"});
  for (const size_t rank : {0u, 1u, 2u, 4u, 9u, 24u, 49u, 99u}) {
    if (rank >= fixes.size()) break;
    table.AddRow({"#" + std::to_string(rank + 1),
                  std::to_string(fixes[rank]),
                  std::to_string(fixes[rank])});
  }
  table.Print(std::cout);
  size_t total = 0;
  size_t active_rules = 0;
  for (const size_t f : fixes) {
    total += f;
    active_rules += f > 0;
  }
  std::cout << "total repairs " << total << " across " << active_rules
            << " firing rules; every one is a saved user interaction\n";
}

void FixVsEdit(const Workload& workload) {
  std::cout << "\n-- Fig. 12(b): Fix vs automated Edit --\n";
  Table by_fix = workload.dirty;
  FastRepairer fix(&workload.rules);
  fix.RepairTable(&by_fix);
  const Accuracy fix_acc =
      EvaluateRepair(workload.data.clean, workload.dirty, by_fix);

  Table by_edit = workload.dirty;
  AutoEditRepairer edit(&workload.rules);
  edit.RepairTable(&by_edit);
  const Accuracy edit_acc =
      EvaluateRepair(workload.data.clean, workload.dirty, by_edit);

  TextTable table({"method", "precision", "recall", "changed", "broken"});
  table.AddRow({"Fix", FormatDouble(fix_acc.precision()),
                FormatDouble(fix_acc.recall()),
                std::to_string(fix_acc.cells_changed),
                std::to_string(fix_acc.cells_broken)});
  table.AddRow({"Edit", FormatDouble(edit_acc.precision()),
                FormatDouble(edit_acc.recall()),
                std::to_string(edit_acc.cells_changed),
                std::to_string(edit_acc.cells_broken)});
  table.Print(std::cout);
}

void Run() {
  const ExperimentScale scale = GetExperimentScale();
  std::cout << "Fig. 12 reproduction — " << DescribeScale(scale) << "\n";
  // The paper uses 100 rules and 10% noise for this experiment.
  const Workload workload = MakeHospWorkload(scale.hosp_rows, 100);
  PerRuleFixes(workload);
  FixVsEdit(workload);
  std::cout << "\nShape check vs paper: top rules repair tens of tuples "
               "(editing rules would ask the user once per tuple); Fix "
               "dominates Edit on precision, with Edit breaking correct "
               "cells whenever errors sit in the evidence.\n";
}

}  // namespace
}  // namespace fixrep::bench

int main() {
  fixrep::bench::Run();
  return 0;
}
