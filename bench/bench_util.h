#ifndef FIXREP_BENCH_BENCH_UTIL_H_
#define FIXREP_BENCH_BENCH_UTIL_H_

#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/timer.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/uis.h"
#include "eval/experiment.h"
#include "rulegen/rulegen.h"
#include "rules/rule_set.h"

namespace fixrep::bench {

// One experiment workload: clean data, its dirty copy, the FDs, and a
// generated consistent rule set, all sharing one value pool.
struct Workload {
  GeneratedData data;
  Table dirty;
  RuleSet rules;
  NoiseReport noise;

  Workload(GeneratedData generated, Table dirty_table, RuleSet rule_set,
           NoiseReport noise_report)
      : data(std::move(generated)),
        dirty(std::move(dirty_table)),
        rules(std::move(rule_set)),
        noise(noise_report) {}
};

inline Workload MakeHospWorkload(size_t rows, size_t max_rules,
                                 double noise_rate = 0.10,
                                 double typo_share = 0.5,
                                 uint64_t seed = 0x4051) {
  HospOptions hosp;
  hosp.rows = rows;
  hosp.num_hospitals = std::max<size_t>(rows / 30, 50);
  hosp.seed = seed;
  GeneratedData data = GenerateHosp(hosp);
  Table dirty = data.clean;
  NoiseOptions noise;
  noise.noise_rate = noise_rate;
  noise.typo_share = typo_share;
  noise.seed = seed ^ 0xd1e7;
  const NoiseReport report = InjectNoise(
      &dirty, ConstraintAttributes(*data.schema, data.fds), noise);
  RuleGenOptions rulegen;
  rulegen.max_rules = max_rules;
  rulegen.seed = seed ^ 0x9e37;
  RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  return Workload(std::move(data), std::move(dirty), std::move(rules),
                  report);
}

inline Workload MakeUisWorkload(size_t rows, size_t max_rules,
                                double noise_rate = 0.10,
                                double typo_share = 0.5,
                                uint64_t seed = 0x0715) {
  UisOptions uis;
  uis.rows = rows;
  uis.seed = seed;
  GeneratedData data = GenerateUis(uis);
  Table dirty = data.clean;
  NoiseOptions noise;
  noise.noise_rate = noise_rate;
  noise.typo_share = typo_share;
  noise.seed = seed ^ 0xd1e7;
  const NoiseReport report = InjectNoise(
      &dirty, ConstraintAttributes(*data.schema, data.fds), noise);
  RuleGenOptions rulegen;
  rulegen.max_rules = max_rules;
  rulegen.seed = seed ^ 0x9e37;
  RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  return Workload(std::move(data), std::move(dirty), std::move(rules),
                  report);
}

// Runs `fn` once and returns its wall time in milliseconds, also
// observing it into the fixrep.bench.<label>_ns latency histogram — the
// one timing idiom for the hand-rolled (non-google-benchmark) benches.
template <typename Fn>
double TimedMs(const char* label, Fn&& fn) {
  const ScopedTimer scoped(MetricsRegistry::Global().GetHistogram(
      std::string("fixrep.bench.") + label + "_ns"));
  fn();
  return scoped.timer().ElapsedMillis();
}

}  // namespace fixrep::bench

#endif  // FIXREP_BENCH_BENCH_UTIL_H_
