#ifndef FIXREP_BENCH_BENCH_UTIL_H_
#define FIXREP_BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/random.h"
#include "common/timer.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/uis.h"
#include "eval/experiment.h"
#include "rulegen/rulegen.h"
#include "rules/rule_set.h"

namespace fixrep::bench {

// One experiment workload: clean data, its dirty copy, the FDs, and a
// generated consistent rule set, all sharing one value pool.
struct Workload {
  GeneratedData data;
  Table dirty;
  RuleSet rules;
  NoiseReport noise;

  Workload(GeneratedData generated, Table dirty_table, RuleSet rule_set,
           NoiseReport noise_report)
      : data(std::move(generated)),
        dirty(std::move(dirty_table)),
        rules(std::move(rule_set)),
        noise(noise_report) {}
};

inline Workload MakeHospWorkload(size_t rows, size_t max_rules,
                                 double noise_rate = 0.10,
                                 double typo_share = 0.5,
                                 uint64_t seed = 0x4051) {
  HospOptions hosp;
  hosp.rows = rows;
  hosp.num_hospitals = std::max<size_t>(rows / 30, 50);
  hosp.seed = seed;
  GeneratedData data = GenerateHosp(hosp);
  Table dirty = data.clean;
  NoiseOptions noise;
  noise.noise_rate = noise_rate;
  noise.typo_share = typo_share;
  noise.seed = seed ^ 0xd1e7;
  const NoiseReport report = InjectNoise(
      &dirty, ConstraintAttributes(*data.schema, data.fds), noise);
  RuleGenOptions rulegen;
  rulegen.max_rules = max_rules;
  rulegen.seed = seed ^ 0x9e37;
  RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  return Workload(std::move(data), std::move(dirty), std::move(rules),
                  report);
}

inline Workload MakeUisWorkload(size_t rows, size_t max_rules,
                                double noise_rate = 0.10,
                                double typo_share = 0.5,
                                uint64_t seed = 0x0715) {
  UisOptions uis;
  uis.rows = rows;
  uis.seed = seed;
  GeneratedData data = GenerateUis(uis);
  Table dirty = data.clean;
  NoiseOptions noise;
  noise.noise_rate = noise_rate;
  noise.typo_share = typo_share;
  noise.seed = seed ^ 0xd1e7;
  const NoiseReport report = InjectNoise(
      &dirty, ConstraintAttributes(*data.schema, data.fds), noise);
  RuleGenOptions rulegen;
  rulegen.max_rules = max_rules;
  rulegen.seed = seed ^ 0x9e37;
  RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  return Workload(std::move(data), std::move(dirty), std::move(rules),
                  report);
}

// A duplicate-heavy table: `rows` tuples sampled (deterministic PRNG)
// from the first `distinct` rows of `source`. Models real cleaning
// workloads dominated by repeated value patterns — duplicated
// registrations, repeated form entries — the regime the repair memo
// targets.
inline Table MakeDuplicateHeavy(const Table& source, size_t rows,
                                size_t distinct, uint64_t seed = 0x9d2c) {
  Table table(source.schema_ptr(), source.pool_ptr());
  table.Reserve(rows);
  distinct = std::min(std::max<size_t>(distinct, 1), source.num_rows());
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    table.AppendRow(source.row(rng.Uniform(distinct)));
  }
  return table;
}

// Machine-readable bench output: nested {"section": {"key": value}}
// written to FIXREP_BENCH_JSON (default `default_path`), so the perf
// trajectory of the repair engines is diffable across PRs.
class BenchJson {
 public:
  explicit BenchJson(std::string default_path) : path_(default_path) {
    const char* env = std::getenv("FIXREP_BENCH_JSON");
    if (env != nullptr && *env != '\0') path_ = env;
  }

  void Set(const std::string& section, const std::string& key,
           double value) {
    sections_[section][key] = value;
  }

  // Non-numeric annotations (e.g. which SIMD kernel produced the run).
  // check_regression.py only gates *rows_per_sec* keys, so string entries
  // are documentation, never thresholds.
  void SetString(const std::string& section, const std::string& key,
                 const std::string& value) {
    string_sections_[section][key] = value;
  }

  bool Write() const {
    std::ofstream out(path_);
    if (!out) return false;
    std::set<std::string> section_names;
    for (const auto& [section, entries] : sections_) {
      section_names.insert(section);
    }
    for (const auto& [section, entries] : string_sections_) {
      section_names.insert(section);
    }
    out << "{\n";
    bool first_section = true;
    for (const std::string& section : section_names) {
      if (!first_section) out << ",\n";
      first_section = false;
      out << "  \"" << JsonEscape(section) << "\": {";
      bool first_entry = true;
      const auto strings = string_sections_.find(section);
      if (strings != string_sections_.end()) {
        for (const auto& [key, value] : strings->second) {
          if (!first_entry) out << ", ";
          first_entry = false;
          out << "\"" << JsonEscape(key) << "\": \"" << JsonEscape(value)
              << "\"";
        }
      }
      const auto numbers = sections_.find(section);
      if (numbers != sections_.end()) {
        for (const auto& [key, value] : numbers->second) {
          if (!first_entry) out << ", ";
          first_entry = false;
          char buffer[64];
          std::snprintf(buffer, sizeof(buffer), "%.6g", value);
          out << "\"" << JsonEscape(key) << "\": " << buffer;
        }
      }
      out << "}";
    }
    out << "\n}\n";
    return true;
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::map<std::string, std::map<std::string, double>> sections_;
  std::map<std::string, std::map<std::string, std::string>> string_sections_;
};

// Defined in alloc_counter.cc (linked into every bench binary): number
// of global operator-new calls since process start. Deterministic for a
// deterministic workload, so deltas around a measured region are
// diffable across PRs in a way wall-clock is not.
std::uint64_t AllocationCount();

// Peak resident set size of the process in bytes (Linux ru_maxrss is
// KiB). Monotone over the process lifetime: report it once, at the end.
inline double PeakRssBytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) * 1024.0;
}

// Sum of the fixrep.span.<name>_ns histogram, for per-phase attribution
// in bench JSON output (0 when the span never ran).
inline double SpanTotalNanos(const std::string& span_name) {
  const Histogram* histogram = MetricsRegistry::Global().FindHistogram(
      "fixrep.span." + span_name + "_ns");
  return histogram == nullptr ? 0.0
                              : static_cast<double>(histogram->Sum());
}

// Runs `fn` once and returns its wall time in milliseconds, also
// observing it into the fixrep.bench.<label>_ns latency histogram — the
// one timing idiom for the hand-rolled (non-google-benchmark) benches.
template <typename Fn>
double TimedMs(const char* label, Fn&& fn) {
  const ScopedTimer scoped(MetricsRegistry::Global().GetHistogram(
      std::string("fixrep.bench.") + label + "_ns", "ns"));
  fn();
  return scoped.timer().ElapsedMillis();
}

}  // namespace fixrep::bench

#endif  // FIXREP_BENCH_BENCH_UTIL_H_
