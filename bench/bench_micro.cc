// Engineering microbenchmarks (not a paper figure): the hot paths of the
// library, plus the interned-vs-string matching ablation motivating the
// ValuePool design.

#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/simd.h"
#include "datagen/travel.h"
#include "relation/csv.h"
#include "repair/lrepair.h"
#include "rules/consistency.h"

namespace fixrep::bench {
namespace {

const Workload& HospWorkload() {
  static const Workload* workload =
      new Workload(MakeHospWorkload(20000, 1000));
  return *workload;
}

void BM_ValuePoolIntern(::benchmark::State& state) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back("key_" + std::to_string(i));
  for (auto _ : state) {
    ValuePool pool;
    for (const auto& key : keys) {
      ::benchmark::DoNotOptimize(pool.Intern(key));
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * keys.size()));
}
BENCHMARK(BM_ValuePoolIntern);

void BM_RuleMatch(::benchmark::State& state) {
  const TravelExample example;
  const FixingRule& rule = example.rules.rule(0);
  const TupleRef r2 = example.dirty.row(1);
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(rule.Matches(r2));
  }
}
BENCHMARK(BM_RuleMatch);

// Ablation: the same match evaluated over strings, as a naive
// implementation without interning would.
void BM_RuleMatchStrings(::benchmark::State& state) {
  const std::vector<std::string> tuple = {"Ian", "China", "Shanghai",
                                          "Hongkong", "ICDE"};
  const std::string evidence_value = "China";
  const std::vector<std::string> negatives = {"Hongkong", "Shanghai"};
  for (auto _ : state) {
    bool match = tuple[1] == evidence_value;
    if (match) {
      bool in_negatives = false;
      for (const auto& negative : negatives) {
        in_negatives |= tuple[2] == negative;
      }
      match = in_negatives;
    }
    ::benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_RuleMatchStrings);

void BM_InvertedIndexBuild(::benchmark::State& state) {
  const Workload& workload = HospWorkload();
  for (auto _ : state) {
    FastRepairer repairer(&workload.rules);
    ::benchmark::DoNotOptimize(&repairer);
  }
  state.counters["rules"] = static_cast<double>(workload.rules.size());
}
BENCHMARK(BM_InvertedIndexBuild);

void BM_LRepairSingleTuple(::benchmark::State& state) {
  const Workload& workload = HospWorkload();
  FastRepairer repairer(&workload.rules);
  size_t row = 0;
  for (auto _ : state) {
    Tuple t = workload.dirty.row(row).ToTuple();
    ::benchmark::DoNotOptimize(repairer.RepairTuple(t));
    row = (row + 1) % workload.dirty.num_rows();
  }
}
BENCHMARK(BM_LRepairSingleTuple);

// --- probe_throughput: the batched inverted-list probe, kernel x mix ---
//
// CompiledRuleIndex::LookupBatch keys/sec over the hosp index (1000
// rules), per kernel. Hit-heavy keys are real cells drawn from the dirty
// table (the counter-initialization access pattern: most probes land on
// a rule's evidence). Miss-heavy keys are (attr, value) pairs no rule
// mentions — the streaming regime of wide, mostly-unconstrained data —
// where the probe is pure hash+empty-slot traffic. items_per_second is
// keys/sec; compare the Scalar/Sse/Avx2 rows directly.

std::vector<uint64_t> HitHeavyKeys(const Workload& workload, size_t n) {
  std::vector<uint64_t> keys;
  keys.reserve(n);
  const Table& dirty = workload.dirty;
  size_t r = 0;
  while (keys.size() < n) {
    const TupleRef t = dirty.row(r % dirty.num_rows());
    for (size_t a = 0; a < t.size() && keys.size() < n; ++a) {
      if (t[a] == kNullValue) continue;
      keys.push_back(
          CompiledRuleIndex::PackKey(static_cast<AttrId>(a), t[a]));
    }
    ++r;
  }
  return keys;
}

std::vector<uint64_t> MissHeavyKeys(const Workload& workload, size_t n) {
  // Value ids far past everything the pool interned: present in no
  // rule's evidence, so every probe ends at an empty slot.
  std::vector<uint64_t> keys;
  keys.reserve(n);
  const size_t arity = workload.rules.schema().arity();
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(CompiledRuleIndex::PackKey(
        static_cast<AttrId>(i % arity),
        static_cast<ValueId>(1000000000 + static_cast<ValueId>(i))));
  }
  return keys;
}

void ProbeThroughput(::benchmark::State& state, SimdKernel kernel,
                     bool hit_heavy) {
  if (!SimdKernelSupported(kernel)) {
    state.SkipWithError("kernel unsupported on this CPU/build");
    return;
  }
  const Workload& workload = HospWorkload();
  static const CompiledRuleIndex* index =
      new CompiledRuleIndex(&workload.rules);
  constexpr size_t kKeys = 4096;
  const std::vector<uint64_t> keys =
      hit_heavy ? HitHeavyKeys(workload, kKeys)
                : MissHeavyKeys(workload, kKeys);
  std::vector<PostingRange> ranges(keys.size());
  for (auto _ : state) {
    index->LookupBatch(kernel, keys.data(), keys.size(), ranges.data());
    ::benchmark::DoNotOptimize(ranges.data());
    ::benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * keys.size()));
  size_t found = 0;
  for (const PostingRange& range : ranges) found += range.empty() ? 0 : 1;
  state.counters["hit_rate"] =
      static_cast<double>(found) / static_cast<double>(ranges.size());
}

void BM_ProbeBatch_Scalar_HitHeavy(::benchmark::State& state) {
  ProbeThroughput(state, SimdKernel::kScalar, true);
}
void BM_ProbeBatch_Sse_HitHeavy(::benchmark::State& state) {
  ProbeThroughput(state, SimdKernel::kSse, true);
}
void BM_ProbeBatch_Avx2_HitHeavy(::benchmark::State& state) {
  ProbeThroughput(state, SimdKernel::kAvx2, true);
}
void BM_ProbeBatch_Scalar_MissHeavy(::benchmark::State& state) {
  ProbeThroughput(state, SimdKernel::kScalar, false);
}
void BM_ProbeBatch_Sse_MissHeavy(::benchmark::State& state) {
  ProbeThroughput(state, SimdKernel::kSse, false);
}
void BM_ProbeBatch_Avx2_MissHeavy(::benchmark::State& state) {
  ProbeThroughput(state, SimdKernel::kAvx2, false);
}
BENCHMARK(BM_ProbeBatch_Scalar_HitHeavy);
BENCHMARK(BM_ProbeBatch_Sse_HitHeavy);
BENCHMARK(BM_ProbeBatch_Avx2_HitHeavy);
BENCHMARK(BM_ProbeBatch_Scalar_MissHeavy);
BENCHMARK(BM_ProbeBatch_Sse_MissHeavy);
BENCHMARK(BM_ProbeBatch_Avx2_MissHeavy);

void BM_PairConsistencyChar(::benchmark::State& state) {
  const Workload& workload = HospWorkload();
  const size_t n = workload.rules.size();
  size_t i = 0;
  for (auto _ : state) {
    const size_t j = (i * 7919 + 13) % n;
    ::benchmark::DoNotOptimize(PairConsistentChar(
        workload.rules.rule(i), workload.rules.rule(j),
        workload.rules.schema().arity(), nullptr));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_PairConsistencyChar);

void BM_PairConsistencyEnum(::benchmark::State& state) {
  const Workload& workload = HospWorkload();
  const size_t n = workload.rules.size();
  size_t i = 0;
  for (auto _ : state) {
    const size_t j = (i * 7919 + 13) % n;
    ::benchmark::DoNotOptimize(PairConsistentEnum(
        workload.rules.rule(i), workload.rules.rule(j),
        workload.rules.schema().arity(), nullptr));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_PairConsistencyEnum);

void BM_CsvRoundTrip(::benchmark::State& state) {
  const TravelExample example;
  std::ostringstream serialized;
  WriteCsv(example.dirty, serialized);
  const std::string text = serialized.str();
  for (auto _ : state) {
    std::istringstream in(text);
    auto pool = std::make_shared<ValuePool>();
    Table table = ReadCsv(in, "Travel", pool);
    ::benchmark::DoNotOptimize(table.num_rows());
  }
}
BENCHMARK(BM_CsvRoundTrip);

}  // namespace
}  // namespace fixrep::bench
