// Engineering microbenchmarks (not a paper figure): the hot paths of the
// library, plus the interned-vs-string matching ablation motivating the
// ValuePool design.

#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datagen/travel.h"
#include "relation/csv.h"
#include "repair/lrepair.h"
#include "rules/consistency.h"

namespace fixrep::bench {
namespace {

const Workload& HospWorkload() {
  static const Workload* workload =
      new Workload(MakeHospWorkload(20000, 1000));
  return *workload;
}

void BM_ValuePoolIntern(::benchmark::State& state) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back("key_" + std::to_string(i));
  for (auto _ : state) {
    ValuePool pool;
    for (const auto& key : keys) {
      ::benchmark::DoNotOptimize(pool.Intern(key));
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * keys.size()));
}
BENCHMARK(BM_ValuePoolIntern);

void BM_RuleMatch(::benchmark::State& state) {
  const TravelExample example;
  const FixingRule& rule = example.rules.rule(0);
  const TupleRef r2 = example.dirty.row(1);
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(rule.Matches(r2));
  }
}
BENCHMARK(BM_RuleMatch);

// Ablation: the same match evaluated over strings, as a naive
// implementation without interning would.
void BM_RuleMatchStrings(::benchmark::State& state) {
  const std::vector<std::string> tuple = {"Ian", "China", "Shanghai",
                                          "Hongkong", "ICDE"};
  const std::string evidence_value = "China";
  const std::vector<std::string> negatives = {"Hongkong", "Shanghai"};
  for (auto _ : state) {
    bool match = tuple[1] == evidence_value;
    if (match) {
      bool in_negatives = false;
      for (const auto& negative : negatives) {
        in_negatives |= tuple[2] == negative;
      }
      match = in_negatives;
    }
    ::benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_RuleMatchStrings);

void BM_InvertedIndexBuild(::benchmark::State& state) {
  const Workload& workload = HospWorkload();
  for (auto _ : state) {
    FastRepairer repairer(&workload.rules);
    ::benchmark::DoNotOptimize(&repairer);
  }
  state.counters["rules"] = static_cast<double>(workload.rules.size());
}
BENCHMARK(BM_InvertedIndexBuild);

void BM_LRepairSingleTuple(::benchmark::State& state) {
  const Workload& workload = HospWorkload();
  FastRepairer repairer(&workload.rules);
  size_t row = 0;
  for (auto _ : state) {
    Tuple t = workload.dirty.row(row).ToTuple();
    ::benchmark::DoNotOptimize(repairer.RepairTuple(t));
    row = (row + 1) % workload.dirty.num_rows();
  }
}
BENCHMARK(BM_LRepairSingleTuple);

void BM_PairConsistencyChar(::benchmark::State& state) {
  const Workload& workload = HospWorkload();
  const size_t n = workload.rules.size();
  size_t i = 0;
  for (auto _ : state) {
    const size_t j = (i * 7919 + 13) % n;
    ::benchmark::DoNotOptimize(PairConsistentChar(
        workload.rules.rule(i), workload.rules.rule(j),
        workload.rules.schema().arity(), nullptr));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_PairConsistencyChar);

void BM_PairConsistencyEnum(::benchmark::State& state) {
  const Workload& workload = HospWorkload();
  const size_t n = workload.rules.size();
  size_t i = 0;
  for (auto _ : state) {
    const size_t j = (i * 7919 + 13) % n;
    ::benchmark::DoNotOptimize(PairConsistentEnum(
        workload.rules.rule(i), workload.rules.rule(j),
        workload.rules.schema().arity(), nullptr));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_PairConsistencyEnum);

void BM_CsvRoundTrip(::benchmark::State& state) {
  const TravelExample example;
  std::ostringstream serialized;
  WriteCsv(example.dirty, serialized);
  const std::string text = serialized.str();
  for (auto _ : state) {
    std::istringstream in(text);
    auto pool = std::make_shared<ValuePool>();
    Table table = ReadCsv(in, "Travel", pool);
    ::benchmark::DoNotOptimize(table.num_rows());
  }
}
BENCHMARK(BM_CsvRoundTrip);

}  // namespace
}  // namespace fixrep::bench
