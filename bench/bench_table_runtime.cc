// Exp-3 in-text runtime table — lRepair vs Heu vs Csm, wall-clock, on
// the full hosp and uis configurations.
//
// Paper shape: lRepair runs orders of magnitude faster than both
// heuristics, because it detects errors per tuple in linear time while
// Heu/Csm reason over cross-tuple violations.

#include <iostream>
#include <string>

#include "baselines/csm.h"
#include "baselines/heu.h"
#include "bench_util.h"
#include "eval/text_table.h"
#include "repair/lrepair.h"

namespace fixrep::bench {
namespace {

struct Timings {
  double lrepair_ms = 0;
  double heu_ms = 0;
  double csm_ms = 0;
};

Timings TimeAll(const Workload& workload) {
  Timings timings;
  {
    Table copy = workload.dirty;
    FastRepairer repairer(&workload.rules);
    timings.lrepair_ms =
        TimedMs("lrepair", [&] { repairer.RepairTable(&copy); });
  }
  {
    Table copy = workload.dirty;
    HeuRepairer heu(workload.data.fds);
    timings.heu_ms = TimedMs("heu", [&] { heu.Repair(&copy); });
  }
  {
    Table copy = workload.dirty;
    CsmRepairer csm(workload.data.fds);
    timings.csm_ms = TimedMs("csm", [&] { csm.Repair(&copy); });
  }
  return timings;
}

void Run() {
  const ExperimentScale scale = GetExperimentScale();
  std::cout << "Exp-3 runtime table reproduction — " << DescribeScale(scale)
            << "\n\n";
  TextTable table({"dataset", "rows", "rules", "lRepair", "Heu", "Csm"});
  {
    const Workload hosp = MakeHospWorkload(scale.hosp_rows, scale.hosp_rules);
    const Timings t = TimeAll(hosp);
    table.AddRow({"hosp", std::to_string(hosp.dirty.num_rows()),
                  std::to_string(hosp.rules.size()),
                  FormatDouble(t.lrepair_ms, 1) + " ms",
                  FormatDouble(t.heu_ms, 1) + " ms",
                  FormatDouble(t.csm_ms, 1) + " ms"});
  }
  {
    const Workload uis = MakeUisWorkload(scale.uis_rows, scale.uis_rules);
    const Timings t = TimeAll(uis);
    table.AddRow({"uis", std::to_string(uis.dirty.num_rows()),
                  std::to_string(uis.rules.size()),
                  FormatDouble(t.lrepair_ms, 1) + " ms",
                  FormatDouble(t.heu_ms, 1) + " ms",
                  FormatDouble(t.csm_ms, 1) + " ms"});
  }
  table.Print(std::cout);
  std::cout << "\nShape check vs paper: lRepair is far faster than Heu and "
               "Csm on both datasets.\n";
  const std::string metrics = DescribeMetrics();
  if (!metrics.empty()) std::cout << "\n" << metrics << "\n";
  MaybeDumpMetrics();  // FIXREP_METRICS_OUT=path for the full JSON
}

}  // namespace
}  // namespace fixrep::bench

int main() {
  fixrep::bench::Run();
  return 0;
}
