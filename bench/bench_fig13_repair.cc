// Fig. 13 — repair efficiency: cRepair vs lRepair while the rule count
// grows (hosp 100..1000 rules, uis 10..100 rules), plus the performance
// layer on top of lRepair: shared compiled index, tuple-signature memo,
// and pooled work-claiming parallelism on a duplicate-heavy hosp-style
// table.
//
// Paper shape: lRepair is the faster engine except at very small rule
// counts, where the index overhead lets cRepair keep up; both are linear
// in the data size.
//
// Besides the google-benchmark table, the run emits BENCH_repair.json
// (rows/s, per-phase ns, memo hit rate, thread count) so the perf
// trajectory is tracked across PRs. Flags: --threads=N, --no-memo (env:
// FIXREP_THREADS, FIXREP_NO_MEMO).
//
// Telemetry (docs/observability.md): FIXREP_TELEMETRY_OUT=<path> writes
// the JSONL event journal for the run (heartbeats + the streaming
// sections' chunk events — check it with check_regression.py --journal);
// FIXREP_METRICS_PORT=<port|0> serves GET /metrics for the duration and
// self-scrapes once mid-bench as an endpoint smoke test.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/metrics_server.h"
#include "common/simd.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "eval/text_table.h"
#include "relation/csv.h"
#include "relation/row_store.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"
#include "repair/recovery.h"
#include "repair/streaming.h"

namespace fixrep::bench {
namespace {

BenchRepairConfig g_config;

// Workloads are expensive to build; cache one per dataset and bench rule
// prefixes out of it. google-benchmark may re-enter the function, so the
// cache is a function-local static.
const Workload& HospWorkload() {
  static const Workload* workload = [] {
    const ExperimentScale scale = GetExperimentScale();
    return new Workload(
        MakeHospWorkload(scale.hosp_rows, scale.hosp_rules));
  }();
  return *workload;
}

const Workload& UisWorkload() {
  static const Workload* workload = [] {
    const ExperimentScale scale = GetExperimentScale();
    return new Workload(MakeUisWorkload(scale.uis_rows, scale.uis_rules));
  }();
  return *workload;
}

// The memo/parallel showcase table: hosp rows resampled so ~32 copies of
// every distinct dirty tuple occur (hosp-at-scale duplicate density).
const Table& DuplicateHeavyTable() {
  static const Table* table = [] {
    const Table& dirty = HospWorkload().dirty;
    return new Table(MakeDuplicateHeavy(
        dirty, dirty.num_rows(), std::max<size_t>(dirty.num_rows() / 32, 1)));
  }();
  return *table;
}

template <typename Repairer>
void RepairWholeTable(::benchmark::State& state, const Workload& workload) {
  const RuleSet rules =
      workload.rules.Prefix(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    Table copy = workload.dirty;  // repairs mutate; measure on a fresh copy
    Repairer repairer(&rules);
    state.ResumeTiming();
    repairer.RepairTable(&copy);
    ::benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * workload.dirty.num_rows()));
  state.counters["rules"] = static_cast<double>(rules.size());
}

void BM_Hosp_cRepair(::benchmark::State& state) {
  RepairWholeTable<ChaseRepairer>(state, HospWorkload());
}
void BM_Hosp_lRepair(::benchmark::State& state) {
  RepairWholeTable<FastRepairer>(state, HospWorkload());
}
void BM_Uis_cRepair(::benchmark::State& state) {
  RepairWholeTable<ChaseRepairer>(state, UisWorkload());
}
void BM_Uis_lRepair(::benchmark::State& state) {
  RepairWholeTable<FastRepairer>(state, UisWorkload());
}

// lRepair configurations over the duplicate-heavy table, all sharing one
// compiled index: plain serial chase, memoized serial, and the pooled
// parallel engine with worker-local memo caches.
enum class Config { kSerial, kSerialMemo, kPooledMemo, kPooledNoMemo };

void RepairDuplicateHeavy(::benchmark::State& state, Config config) {
  const Workload& workload = HospWorkload();
  const Table& dup = DuplicateHeavyTable();
  const CompiledRuleIndex index(&workload.rules);
  for (auto _ : state) {
    state.PauseTiming();
    Table copy = dup;
    state.ResumeTiming();
    switch (config) {
      case Config::kSerial: {
        FastRepairer repairer(&index);
        repairer.RepairTable(&copy);
        break;
      }
      case Config::kSerialMemo: {
        FastRepairer repairer(&index);
        MemoCache memo;
        repairer.set_memo(&memo);
        repairer.RepairTable(&copy);
        break;
      }
      case Config::kPooledMemo:
      case Config::kPooledNoMemo: {
        ParallelRepairOptions options;
        options.threads = g_config.threads;
        options.use_memo = config == Config::kPooledMemo;
        ParallelRepairTable(index, &copy, options);
        break;
      }
    }
    ::benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * dup.num_rows()));
}

void BM_HospDup_lRepair(::benchmark::State& state) {
  RepairDuplicateHeavy(state, Config::kSerial);
}
void BM_HospDup_lRepair_Memo(::benchmark::State& state) {
  RepairDuplicateHeavy(state, Config::kSerialMemo);
}
void BM_HospDup_lRepair_Pooled(::benchmark::State& state) {
  RepairDuplicateHeavy(state, Config::kPooledNoMemo);
}
void BM_HospDup_lRepair_PooledMemo(::benchmark::State& state) {
  RepairDuplicateHeavy(state, Config::kPooledMemo);
}

BENCHMARK(BM_Hosp_cRepair)->DenseRange(100, 1000, 300)
    ->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_Hosp_lRepair)->DenseRange(100, 1000, 300)
    ->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_Uis_cRepair)->DenseRange(10, 100, 30)
    ->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_Uis_lRepair)->DenseRange(10, 100, 30)
    ->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_HospDup_lRepair)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_HospDup_lRepair_Memo)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_HospDup_lRepair_Pooled)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_HospDup_lRepair_PooledMemo)->Unit(::benchmark::kMillisecond);

// One measured before/after pass for BENCH_repair.json: baseline is the
// serial non-memoized chase, "after" is the pooled engine with memo (the
// default production configuration).
void WriteRepairJson() {
  const Workload& workload = HospWorkload();
  const Table& dup = DuplicateHeavyTable();
  const CompiledRuleIndex index(&workload.rules);
  const size_t rows = dup.num_rows();
  const size_t threads = g_config.threads == 0
                             ? ThreadPool::Global().num_workers() + 1
                             : g_config.threads;

  auto& registry = MetricsRegistry::Global();
  const auto counter = [&](const char* name) {
    const Counter* c = registry.FindCounter(name);
    return c == nullptr ? uint64_t{0} : c->Value();
  };

  // Best-of-3 per configuration (table copies made off the clock):
  // one-shot timings on a loaded machine are too noisy for a number
  // meant to be diffed across PRs. The allocation count is taken from
  // the best-timed run; for a deterministic workload it is the same
  // every run anyway.
  struct RunCost {
    double ms = 0;
    double allocations = 0;
  };
  // The in-memory sections finish in single-digit milliseconds, so a
  // contended scheduler slice anywhere in a run swings the number by
  // double-digit percentages; nine attempts make a quiet window likely.
  // The streaming sections run ~1s each and settle at five.
  constexpr int kRuns = 9;
  constexpr int kStreamRuns = 5;
  const auto best_of = [&](const char* label, const auto& run) {
    RunCost best;
    for (int i = 0; i < kRuns; ++i) {
      Table copy = dup;
      const uint64_t allocs_before = AllocationCount();
      const double ms = TimedMs(label, [&] { run(&copy); });
      const auto allocs =
          static_cast<double>(AllocationCount() - allocs_before);
      if (i == 0 || ms < best.ms) best = {ms, allocs};
    }
    return best;
  };

  // Probe-kernel A/B: serial_baseline is always measured with the scalar
  // kernel pinned, so it stays comparable across machines and across the
  // FIXREP_SIMD settings check_perf_regression sweeps — and so
  // speedup_vs_scalar below is an honest same-process ratio.
  const SimdKernel active_kernel = ActiveSimdKernel();
  SetSimdKernel(SimdKernel::kScalar);
  const RunCost baseline = best_of("fig13_baseline", [&](Table* copy) {
    FastRepairer repairer(&index);
    repairer.RepairTable(copy);
  });
  SetSimdKernel(active_kernel);
  const double baseline_ms = baseline.ms;

  // The same serial non-memoized chase under the active SIMD kernel —
  // the tentpole number. Skipped entirely when the active kernel IS
  // scalar (FIXREP_SIMD=off, non-x86): the section would duplicate
  // serial_baseline, and its absence lets the regression checker skip
  // the key on scalar-only runs.
  RunCost simd;
  if (active_kernel != SimdKernel::kScalar) {
    simd = best_of("fig13_simd", [&](Table* copy) {
      FastRepairer repairer(&index);
      repairer.RepairTable(copy);
    });
  }
  const RunCost memo = best_of("fig13_memo", [&](Table* copy) {
    FastRepairer repairer(&index);
    MemoCache memo_cache;
    repairer.set_memo(&memo_cache);
    repairer.RepairTable(copy);
  });
  const double memo_ms = memo.ms;
  const uint64_t hits_before = counter("fixrep.memo.hits");
  const uint64_t misses_before = counter("fixrep.memo.misses");
  const RunCost pooled = best_of("fig13_pooled_memo", [&](Table* copy) {
    ParallelRepairOptions options;
    options.threads = g_config.threads;
    options.use_memo = g_config.use_memo;
    ParallelRepairTable(index, copy, options);
  });
  const double pooled_ms = pooled.ms;
  const uint64_t hits = counter("fixrep.memo.hits") - hits_before;
  const uint64_t misses = counter("fixrep.memo.misses") - misses_before;
  const double hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);

  // End-to-end chunked pipeline: CSV text in, repaired CSV text out,
  // through the streaming session (serial + memo, the CLI's --stream
  // defaults). Rendered once off the clock; the measured region is
  // parse + repair + serialize, the whole-file ingest-to-emit path.
  constexpr size_t kStreamChunkRows = 4096;
  std::string input_csv;
  {
    std::ostringstream csv;
    WriteCsv(dup, csv);
    input_csv = csv.str();
  }
  struct StreamCost {
    RunCost cost;
    StreamingRepairResult result;
  };
  const auto stream_best_of = [&](const char* label, const std::string& csv,
                                  const CompiledRuleIndex& run_index,
                                  const StreamingRepairOptions& options) {
    StreamCost best;
    for (int i = 0; i < kStreamRuns; ++i) {
      std::istringstream in(csv);
      std::ostringstream out;
      const uint64_t allocs_before = AllocationCount();
      StreamingRepairResult run_result;
      const double ms = TimedMs(label, [&] {
        StatusOr<CsvChunkReader> reader =
            CsvChunkReader::Open(in, "bench", workload.data.pool, {});
        StreamingRepairSession session(&run_index, options);
        const auto result = session.Run(&reader.value(), out);
        if (!result.ok() || result.value().rows_emitted != rows) {
          std::cerr << "streaming bench run failed\n";
          std::abort();
        }
        run_result = result.value();
      });
      const auto allocs =
          static_cast<double>(AllocationCount() - allocs_before);
      if (i == 0 || ms < best.cost.ms) best = {{ms, allocs}, run_result};
    }
    return best;
  };

  StreamingRepairOptions chunked_options;
  chunked_options.chunk_rows = kStreamChunkRows;
  const StreamCost streaming_run =
      stream_best_of("fig13_streaming", input_csv, index, chunked_options);
  const RunCost streaming = streaming_run.cost;

  // Durable streaming: the same chunked pipeline journaling every chunk
  // to a write-ahead log with one group fsync per commit
  // (docs/durability.md). check_regression.py --wal gates the journaling
  // tax against the no-WAL streaming section above.
  const std::string wal_path = "BENCH_repair.wal";
  WalRunHeader wal_header;
  wal_header.rule_fingerprint = RuleSetFingerprint(workload.rules);
  for (size_t a = 0; a < dup.num_columns(); ++a) {
    wal_header.attribute_names.push_back(
        dup.schema().attribute_name(static_cast<AttrId>(a)));
  }
  wal_header.chunk_rows = kStreamChunkRows;
  // WAL and no-WAL passes are interleaved within one loop so both see
  // the same machine conditions: the overhead ratio below compares
  // best-of numbers taken seconds apart, not sections apart, which is
  // what keeps a 10% gate meaningful on a shared machine.
  StreamCost wal_run;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_bytes = 0;
  double nowal_ms = streaming.ms;
  // Best WAL/no-WAL ratio over adjacent pairs: each iteration's two
  // runs execute back to back, so a load spike hits both sides of at
  // least one pair roughly equally and the min ratio converges on the
  // true journaling tax instead of the machine's mood.
  double best_overhead_ratio = 0;
  for (int i = 0; i < kStreamRuns; ++i) {
    std::remove(wal_path.c_str());
    StatusOr<ChunkJournal> journal =
        ChunkJournal::Create(wal_path, wal_header);
    if (!journal.ok()) {
      std::cerr << "cannot create " << wal_path << ": "
                << journal.status().message() << "\n";
      std::abort();
    }
    StreamingRepairOptions wal_options = chunked_options;
    wal_options.journal = &journal.value();
    std::istringstream in(input_csv);
    std::ostringstream out;
    const uint64_t allocs_before = AllocationCount();
    StreamingRepairResult run_result;
    const double ms = TimedMs("fig13_streaming_wal", [&] {
      StatusOr<CsvChunkReader> reader =
          CsvChunkReader::Open(in, "bench", workload.data.pool, {});
      StreamingRepairSession session(&index, wal_options);
      const auto result = session.Run(&reader.value(), out);
      if (!result.ok() || result.value().rows_emitted != rows) {
        std::cerr << "durable streaming bench run failed\n";
        std::abort();
      }
      run_result = result.value();
    });
    const auto allocs =
        static_cast<double>(AllocationCount() - allocs_before);
    if (i == 0 || ms < wal_run.cost.ms) {
      wal_run = {{ms, allocs}, run_result};
      wal_fsyncs = journal->fsync_count();
      wal_bytes = journal->appended_bytes();
    }
    if (!journal->Close().ok()) std::abort();
    {
      std::istringstream nowal_in(input_csv);
      std::ostringstream nowal_out;
      const double reference_ms = TimedMs("fig13_streaming_nowal", [&] {
        StatusOr<CsvChunkReader> reader = CsvChunkReader::Open(
            nowal_in, "bench", workload.data.pool, {});
        StreamingRepairSession session(&index, chunked_options);
        const auto result = session.Run(&reader.value(), nowal_out);
        if (!result.ok() || result.value().rows_emitted != rows) {
          std::cerr << "streaming bench run failed\n";
          std::abort();
        }
      });
      nowal_ms = std::min(nowal_ms, reference_ms);
      const double ratio = ms / reference_ms;
      if (i == 0 || ratio < best_overhead_ratio) {
        best_overhead_ratio = ratio;
      }
    }
  }
  std::remove(wal_path.c_str());

  // Out-of-core spill: the whole input as one chunk whose cell blocks
  // obey a resident budget of 8 blocks (comfortably above the 2-block
  // working-set floor, so requested == effective and the regression
  // gate's peak-vs-budget comparison is meaningful).
  const size_t block_bytes =
      RowStore::kRowsPerBlock * dup.num_columns() * sizeof(ValueId);
  const size_t spill_budget = 8 * block_bytes;
  StreamingRepairOptions spill_options;
  spill_options.chunk_rows = ~size_t{0};  // whole file; the budget rules
  spill_options.memory_budget_bytes = spill_budget;
  const StreamCost spill_run =
      stream_best_of("fig13_streaming_spill", input_csv, index, spill_options);

  // Column pruning, measured on the shape it exists for: wide rows where
  // only a few columns are rule-constrained and the rest are
  // high-cardinality free text (ids, timestamps, notes) that interning
  // would hash and keep forever. The hosp rules mention every hosp
  // column, so the base workload gains nothing from pruning; the wide
  // variant appends per-row-unique payload columns no rule mentions
  // (rule attr ids stay valid — payload columns go at the end) and
  // compares the same chunked stream with pruning off vs on.
  constexpr size_t kPayloadColumns = 8;
  std::vector<std::string> wide_names;
  for (size_t a = 0; a < dup.num_columns(); ++a) {
    wide_names.push_back(
        dup.schema().attribute_name(static_cast<AttrId>(a)));
  }
  for (size_t w = 0; w < kPayloadColumns; ++w) {
    wide_names.push_back("payload_" + std::to_string(w));
  }
  const auto wide_schema =
      std::make_shared<Schema>("hosp_wide", std::move(wide_names));
  Table wide(wide_schema, workload.data.pool);
  {
    Tuple row;
    for (size_t r = 0; r < dup.num_rows(); ++r) {
      row.clear();
      const TupleRef base = dup.row(r);
      for (size_t a = 0; a < base.size(); ++a) row.push_back(base[a]);
      for (size_t w = 0; w < kPayloadColumns; ++w) {
        row.push_back(workload.data.pool->Intern(
            "note-" + std::to_string(w) + "-" + std::to_string(r * 7919) +
            "-f8a3bc21"));
      }
      wide.AppendRow(row);
    }
  }
  RuleSet wide_rules(wide_schema, workload.data.pool);
  for (size_t i = 0; i < workload.rules.size(); ++i) {
    wide_rules.Add(workload.rules.rule(i));
  }
  const CompiledRuleIndex wide_index(&wide_rules);
  std::string wide_csv;
  {
    std::ostringstream csv;
    WriteCsv(wide, csv);
    wide_csv = csv.str();
  }
  StreamingRepairOptions wide_options;
  wide_options.chunk_rows = kStreamChunkRows;
  const StreamCost wide_run = stream_best_of("fig13_streaming_wide",
                                             wide_csv, wide_index,
                                             wide_options);
  StreamingRepairOptions pruned_options = wide_options;
  pruned_options.prune_columns = true;
  const StreamCost pruned_run = stream_best_of("fig13_streaming_pruned",
                                               wide_csv, wide_index,
                                               pruned_options);

  BenchJson json("BENCH_repair.json");
  json.Set("workload", "rows", static_cast<double>(rows));
  json.Set("workload", "rules", static_cast<double>(workload.rules.size()));
  json.Set("workload", "distinct_rows",
           static_cast<double>(std::max<size_t>(rows / 32, 1)));
  json.Set("workload", "thread_count", static_cast<double>(threads));
  json.Set("workload", "memo_enabled", g_config.use_memo ? 1.0 : 0.0);
  json.SetString("workload", "simd_kernel", SimdKernelName(active_kernel));
  json.Set("serial_baseline", "ms", baseline_ms);
  json.Set("serial_baseline", "rows_per_sec", rows / (baseline_ms / 1e3));
  json.Set("serial_baseline", "allocations", baseline.allocations);
  if (active_kernel != SimdKernel::kScalar) {
    json.Set("serial_nomemo_simd", "ms", simd.ms);
    json.Set("serial_nomemo_simd", "rows_per_sec", rows / (simd.ms / 1e3));
    json.Set("serial_nomemo_simd", "allocations", simd.allocations);
    json.Set("serial_nomemo_simd", "speedup_vs_scalar", baseline_ms / simd.ms);
  }
  json.Set("serial_memo", "ms", memo_ms);
  json.Set("serial_memo", "rows_per_sec", rows / (memo_ms / 1e3));
  json.Set("serial_memo", "allocations", memo.allocations);
  json.Set("pooled_memo", "ms", pooled_ms);
  json.Set("pooled_memo", "rows_per_sec", rows / (pooled_ms / 1e3));
  json.Set("pooled_memo", "allocations", pooled.allocations);
  json.Set("pooled_memo", "memo_hit_rate", hit_rate);
  json.Set("pooled_memo", "speedup_vs_baseline", baseline_ms / pooled_ms);
  json.Set("streaming_chunked", "ms", streaming.ms);
  json.Set("streaming_chunked", "rows_per_sec", rows / (streaming.ms / 1e3));
  json.Set("streaming_chunked", "allocations", streaming.allocations);
  json.Set("streaming_chunked", "chunk_rows",
           static_cast<double>(kStreamChunkRows));
  json.Set("streaming_wal", "ms", wal_run.cost.ms);
  json.Set("streaming_wal", "rows_per_sec", rows / (wal_run.cost.ms / 1e3));
  json.Set("streaming_wal", "allocations", wal_run.cost.allocations);
  json.Set("streaming_wal", "chunk_rows",
           static_cast<double>(kStreamChunkRows));
  // Fractional slowdown vs the interleaved no-WAL reference (best
  // adjacent pair); check_regression.py --wal gates this key directly.
  json.Set("streaming_wal", "wal_overhead", best_overhead_ratio - 1.0);
  json.Set("streaming_wal", "nowal_rows_per_sec", rows / (nowal_ms / 1e3));
  json.Set("streaming_wal", "fsyncs", static_cast<double>(wal_fsyncs));
  json.Set("streaming_wal", "fsyncs_per_chunk",
           static_cast<double>(wal_fsyncs) /
               std::max<double>(1.0, static_cast<double>(wal_run.result.chunks)));
  json.Set("streaming_wal", "wal_bytes", static_cast<double>(wal_bytes));
  json.Set("streaming_spill", "ms", spill_run.cost.ms);
  json.Set("streaming_spill", "rows_per_sec",
           rows / (spill_run.cost.ms / 1e3));
  json.Set("streaming_spill", "budget_bytes",
           static_cast<double>(spill_budget));
  json.Set("streaming_spill", "peak_resident_bytes",
           static_cast<double>(spill_run.result.peak_resident_bytes));
  json.Set("streaming_pruned", "ms", pruned_run.cost.ms);
  json.Set("streaming_pruned", "rows_per_sec",
           rows / (pruned_run.cost.ms / 1e3));
  json.Set("streaming_pruned", "columns_pruned",
           static_cast<double>(pruned_run.result.columns_pruned));
  json.Set("streaming_pruned", "payload_columns",
           static_cast<double>(kPayloadColumns));
  json.Set("streaming_pruned", "unpruned_ms", wide_run.cost.ms);
  json.Set("streaming_pruned", "speedup_vs_chunked",
           wide_run.cost.ms / pruned_run.cost.ms);
  json.Set("process", "peak_rss_bytes", PeakRssBytes());
  json.Set("process", "allocations_total",
           static_cast<double>(AllocationCount()));
  json.Set("phases_ns", "index_build",
           SpanTotalNanos("lrepair.index_build"));
  json.Set("phases_ns", "chase", SpanTotalNanos("lrepair.chase"));
  json.Set("phases_ns", "parallel_repair_table",
           SpanTotalNanos("parallel.repair_table"));
  if (json.Write()) {
    std::cout << "wrote " << json.path() << " (speedup "
              << FormatDouble(baseline_ms / pooled_ms, 2) << "x, memo hit "
              << FormatDouble(hit_rate * 100.0, 1) << "%, kernel "
              << SimdKernelName(active_kernel);
    if (active_kernel != SimdKernel::kScalar) {
      std::cout << ", simd speedup "
                << FormatDouble(baseline_ms / simd.ms, 2) << "x";
    }
    std::cout << ")\n";
  }
  const std::string metrics = DescribeMetrics();
  if (!metrics.empty()) std::cout << metrics << "\n";
  MaybeDumpMetrics();
}

// One GET /metrics against our own endpoint, mid-run: the smoke test
// check_perf_regression relies on. Returns false (after printing why)
// when the scrape fails — a broken endpoint must fail the bench.
bool SelfScrape(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "self-scrape: socket: " << std::strerror(errno) << "\n";
    return false;
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::cerr << "self-scrape: connect: " << std::strerror(errno) << "\n";
    close(fd);
    return false;
  }
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  if (send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    std::cerr << "self-scrape: send failed\n";
    close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  if (response.find("200 OK") == std::string::npos ||
      response.find("fixrep_") == std::string::npos) {
    std::cerr << "self-scrape: unexpected response:\n" << response << "\n";
    return false;
  }
  std::cout << "self-scrape ok: " << response.size()
            << " bytes from 127.0.0.1:" << port << "/metrics\n";
  return true;
}

}  // namespace
}  // namespace fixrep::bench

int main(int argc, char** argv) {
  fixrep::bench::g_config = fixrep::ParseBenchRepairConfig(argc, argv);

  // FIXREP_TELEMETRY_OUT: journal the run (heartbeats + chunk events).
  std::unique_ptr<fixrep::TelemetryJournal> journal;
  std::unique_ptr<fixrep::HeartbeatSampler> sampler;
  const char* journal_path = std::getenv("FIXREP_TELEMETRY_OUT");
  if (journal_path != nullptr && *journal_path != '\0') {
    auto opened = fixrep::TelemetryJournal::Open(journal_path);
    if (!opened.ok()) {
      std::cerr << opened.status().message() << "\n";
      return 1;
    }
    journal = std::move(opened).value();
    journal->Append(fixrep::TelemetryEvent("run_start")
                        .SetString("command", "bench_fig13_repair"));
    fixrep::SetGlobalJournal(journal.get());
    fixrep::HeartbeatOptions heartbeat;
    heartbeat.interval_ms = 250;  // streaming sections run ~1s each
    heartbeat.journal = journal.get();
    sampler = std::make_unique<fixrep::HeartbeatSampler>(heartbeat);
    sampler->Start();
  }

  // FIXREP_METRICS_PORT: serve GET /metrics (0 = ephemeral).
  std::unique_ptr<fixrep::MetricsServer> server;
  const char* port_env = std::getenv("FIXREP_METRICS_PORT");
  int exit_code = 0;
  if (port_env != nullptr && *port_env != '\0') {
    fixrep::MetricsServerOptions options;
    options.tcp_port = std::atoi(port_env);
    auto started = fixrep::MetricsServer::Start(std::move(options));
    if (!started.ok()) {
      std::cerr << started.status().message() << "\n";
      exit_code = 1;
    } else {
      server = std::move(started).value();
      std::cout << "serving /metrics on 127.0.0.1:" << server->port()
                << "\n";
    }
  }

  if (exit_code == 0) {
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    fixrep::bench::WriteRepairJson();
    // The measured pass has run but the endpoint is still live — the
    // scrape must see the run's counters, not an empty registry.
    if (server != nullptr && !fixrep::bench::SelfScrape(server->port())) {
      exit_code = 1;
    }
  }

  if (sampler != nullptr) sampler->Stop();  // emits the final heartbeat
  if (server != nullptr) server->Stop();
  if (journal != nullptr) {
    fixrep::SetGlobalJournal(nullptr);
    journal->Append(
        fixrep::TelemetryEvent("run_end")
            .Set("exit_code", static_cast<uint64_t>(exit_code))
            .Set("rss_peak_bytes", fixrep::TelemetryPeakRssBytes()));
  }
  if (exit_code == 0) ::benchmark::Shutdown();
  return exit_code;
}
