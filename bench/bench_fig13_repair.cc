// Fig. 13 — repair efficiency: cRepair vs lRepair while the rule count
// grows (hosp 100..1000 rules, uis 10..100 rules), plus the performance
// layer on top of lRepair: shared compiled index, tuple-signature memo,
// and pooled work-claiming parallelism on a duplicate-heavy hosp-style
// table.
//
// Paper shape: lRepair is the faster engine except at very small rule
// counts, where the index overhead lets cRepair keep up; both are linear
// in the data size.
//
// Besides the google-benchmark table, the run emits BENCH_repair.json
// (rows/s, per-phase ns, memo hit rate, thread count) so the perf
// trajectory is tracked across PRs. Flags: --threads=N, --no-memo (env:
// FIXREP_THREADS, FIXREP_NO_MEMO).
//
// Telemetry (docs/observability.md): FIXREP_TELEMETRY_OUT=<path> writes
// the JSONL event journal for the run (heartbeats + the streaming
// sections' chunk events — check it with check_regression.py --journal);
// FIXREP_METRICS_PORT=<port|0> serves GET /metrics for the duration and
// self-scrapes once mid-bench as an endpoint smoke test.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/metrics_server.h"
#include "common/simd.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "eval/text_table.h"
#include "relation/csv.h"
#include "relation/row_store.h"
#include "repair/config.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"
#include "repair/recovery.h"
#include "repair/session.h"
#include "repair/streaming.h"
#include "rulegen/scale.h"
#include "rules/rule_dict.h"
#include "rules/rule_io.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/registry.h"

namespace fixrep::bench {
namespace {

BenchRepairConfig g_config;

// Workloads are expensive to build; cache one per dataset and bench rule
// prefixes out of it. google-benchmark may re-enter the function, so the
// cache is a function-local static.
const Workload& HospWorkload() {
  static const Workload* workload = [] {
    const ExperimentScale scale = GetExperimentScale();
    return new Workload(
        MakeHospWorkload(scale.hosp_rows, scale.hosp_rules));
  }();
  return *workload;
}

const Workload& UisWorkload() {
  static const Workload* workload = [] {
    const ExperimentScale scale = GetExperimentScale();
    return new Workload(MakeUisWorkload(scale.uis_rows, scale.uis_rules));
  }();
  return *workload;
}

// The memo/parallel showcase table: hosp rows resampled so ~32 copies of
// every distinct dirty tuple occur (hosp-at-scale duplicate density).
const Table& DuplicateHeavyTable() {
  static const Table* table = [] {
    const Table& dirty = HospWorkload().dirty;
    return new Table(MakeDuplicateHeavy(
        dirty, dirty.num_rows(), std::max<size_t>(dirty.num_rows() / 32, 1)));
  }();
  return *table;
}

// Peak-RSS bookkeeping for the dictionary budget section. Writing "5"
// to /proc/self/clear_refs resets VmHWM, so the section measures its
// own high-water mark instead of whatever earlier sections touched.
bool ResetPeakRss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  std::fclose(f);
  return ok;
}

uint64_t ProcStatusBytes(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  const size_t key_len = std::strlen(key);
  while (std::getline(status, line)) {
    if (line.compare(0, key_len, key) == 0) {
      return std::strtoull(line.c_str() + key_len, nullptr, 10) * 1024;
    }
  }
  return 0;
}

uint64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto pos = in.tellg();
  return pos < 0 ? 0 : static_cast<uint64_t>(pos);
}

template <typename Repairer>
void RepairWholeTable(::benchmark::State& state, const Workload& workload) {
  const RuleSet rules =
      workload.rules.Prefix(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    Table copy = workload.dirty;  // repairs mutate; measure on a fresh copy
    Repairer repairer(&rules);
    state.ResumeTiming();
    repairer.RepairTable(&copy);
    ::benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * workload.dirty.num_rows()));
  state.counters["rules"] = static_cast<double>(rules.size());
}

void BM_Hosp_cRepair(::benchmark::State& state) {
  RepairWholeTable<ChaseRepairer>(state, HospWorkload());
}
void BM_Hosp_lRepair(::benchmark::State& state) {
  RepairWholeTable<FastRepairer>(state, HospWorkload());
}
void BM_Uis_cRepair(::benchmark::State& state) {
  RepairWholeTable<ChaseRepairer>(state, UisWorkload());
}
void BM_Uis_lRepair(::benchmark::State& state) {
  RepairWholeTable<FastRepairer>(state, UisWorkload());
}

// lRepair configurations over the duplicate-heavy table, all sharing one
// compiled index: plain serial chase, memoized serial, and the pooled
// parallel engine with worker-local memo caches.
enum class Config { kSerial, kSerialMemo, kPooledMemo, kPooledNoMemo };

void RepairDuplicateHeavy(::benchmark::State& state, Config config) {
  const Workload& workload = HospWorkload();
  const Table& dup = DuplicateHeavyTable();
  const CompiledRuleIndex index(&workload.rules);
  for (auto _ : state) {
    state.PauseTiming();
    Table copy = dup;
    state.ResumeTiming();
    switch (config) {
      case Config::kSerial: {
        FastRepairer repairer(&index);
        repairer.RepairTable(&copy);
        break;
      }
      case Config::kSerialMemo: {
        FastRepairer repairer(&index);
        MemoCache memo;
        repairer.set_memo(&memo);
        repairer.RepairTable(&copy);
        break;
      }
      case Config::kPooledMemo:
      case Config::kPooledNoMemo: {
        ParallelRepairOptions options;
        options.threads = g_config.threads;
        options.use_memo = config == Config::kPooledMemo;
        ParallelRepairTable(index, &copy, options);
        break;
      }
    }
    ::benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * dup.num_rows()));
}

void BM_HospDup_lRepair(::benchmark::State& state) {
  RepairDuplicateHeavy(state, Config::kSerial);
}
void BM_HospDup_lRepair_Memo(::benchmark::State& state) {
  RepairDuplicateHeavy(state, Config::kSerialMemo);
}
void BM_HospDup_lRepair_Pooled(::benchmark::State& state) {
  RepairDuplicateHeavy(state, Config::kPooledNoMemo);
}
void BM_HospDup_lRepair_PooledMemo(::benchmark::State& state) {
  RepairDuplicateHeavy(state, Config::kPooledMemo);
}

BENCHMARK(BM_Hosp_cRepair)->DenseRange(100, 1000, 300)
    ->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_Hosp_lRepair)->DenseRange(100, 1000, 300)
    ->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_Uis_cRepair)->DenseRange(10, 100, 30)
    ->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_Uis_lRepair)->DenseRange(10, 100, 30)
    ->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_HospDup_lRepair)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_HospDup_lRepair_Memo)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_HospDup_lRepair_Pooled)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_HospDup_lRepair_PooledMemo)->Unit(::benchmark::kMillisecond);

// One measured before/after pass for BENCH_repair.json: baseline is the
// serial non-memoized chase, "after" is the pooled engine with memo (the
// default production configuration).
void WriteRepairJson() {
  const Workload& workload = HospWorkload();
  const Table& dup = DuplicateHeavyTable();
  const CompiledRuleIndex index(&workload.rules);
  const size_t rows = dup.num_rows();
  const size_t threads = g_config.threads == 0
                             ? ThreadPool::Global().num_workers() + 1
                             : g_config.threads;

  auto& registry = MetricsRegistry::Global();
  const auto counter = [&](const char* name) {
    const Counter* c = registry.FindCounter(name);
    return c == nullptr ? uint64_t{0} : c->Value();
  };

  // Best-of-3 per configuration (table copies made off the clock):
  // one-shot timings on a loaded machine are too noisy for a number
  // meant to be diffed across PRs. The allocation count is taken from
  // the best-timed run; for a deterministic workload it is the same
  // every run anyway.
  struct RunCost {
    double ms = 0;
    double allocations = 0;
  };
  // The in-memory sections finish in single-digit milliseconds, so a
  // contended scheduler slice anywhere in a run swings the number by
  // double-digit percentages; nine attempts make a quiet window likely.
  // The streaming sections run ~1s each and settle at five.
  constexpr int kRuns = 9;
  constexpr int kStreamRuns = 5;
  const auto best_of = [&](const char* label, const auto& run) {
    RunCost best;
    for (int i = 0; i < kRuns; ++i) {
      Table copy = dup;
      const uint64_t allocs_before = AllocationCount();
      const double ms = TimedMs(label, [&] { run(&copy); });
      const auto allocs =
          static_cast<double>(AllocationCount() - allocs_before);
      if (i == 0 || ms < best.ms) best = {ms, allocs};
    }
    return best;
  };

  // Probe-kernel A/B: serial_baseline is always measured with the scalar
  // kernel pinned, so it stays comparable across machines and across the
  // FIXREP_SIMD settings check_perf_regression sweeps — and so
  // speedup_vs_scalar below is an honest same-process ratio.
  const SimdKernel active_kernel = ActiveSimdKernel();
  SetSimdKernel(SimdKernel::kScalar);
  const RunCost baseline = best_of("fig13_baseline", [&](Table* copy) {
    FastRepairer repairer(&index);
    repairer.RepairTable(copy);
  });
  SetSimdKernel(active_kernel);
  const double baseline_ms = baseline.ms;

  // The same serial non-memoized chase under the active SIMD kernel —
  // the tentpole number. Skipped entirely when the active kernel IS
  // scalar (FIXREP_SIMD=off, non-x86): the section would duplicate
  // serial_baseline, and its absence lets the regression checker skip
  // the key on scalar-only runs.
  RunCost simd;
  if (active_kernel != SimdKernel::kScalar) {
    simd = best_of("fig13_simd", [&](Table* copy) {
      FastRepairer repairer(&index);
      repairer.RepairTable(copy);
    });
  }
  const RunCost memo = best_of("fig13_memo", [&](Table* copy) {
    FastRepairer repairer(&index);
    MemoCache memo_cache;
    repairer.set_memo(&memo_cache);
    repairer.RepairTable(copy);
  });
  const double memo_ms = memo.ms;
  const uint64_t hits_before = counter("fixrep.memo.hits");
  const uint64_t misses_before = counter("fixrep.memo.misses");
  const RunCost pooled = best_of("fig13_pooled_memo", [&](Table* copy) {
    ParallelRepairOptions options;
    options.threads = g_config.threads;
    options.use_memo = g_config.use_memo;
    ParallelRepairTable(index, copy, options);
  });
  const double pooled_ms = pooled.ms;
  const uint64_t hits = counter("fixrep.memo.hits") - hits_before;
  const uint64_t misses = counter("fixrep.memo.misses") - misses_before;
  const double hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);

  // End-to-end chunked pipeline: CSV text in, repaired CSV text out,
  // through the streaming session (serial + memo, the CLI's --stream
  // defaults). Rendered once off the clock; the measured region is
  // parse + repair + serialize, the whole-file ingest-to-emit path.
  constexpr size_t kStreamChunkRows = 4096;
  std::string input_csv;
  {
    std::ostringstream csv;
    WriteCsv(dup, csv);
    input_csv = csv.str();
  }
  struct StreamCost {
    RunCost cost;
    StreamingRepairResult result;
  };
  const auto stream_best_of = [&](const char* label, const std::string& csv,
                                  const CompiledRuleIndex& run_index,
                                  const StreamingRepairOptions& options) {
    StreamCost best;
    for (int i = 0; i < kStreamRuns; ++i) {
      std::istringstream in(csv);
      std::ostringstream out;
      const uint64_t allocs_before = AllocationCount();
      StreamingRepairResult run_result;
      const double ms = TimedMs(label, [&] {
        StatusOr<CsvChunkReader> reader =
            CsvChunkReader::Open(in, "bench", workload.data.pool, {});
        StreamingRepairSession session(&run_index, options);
        const auto result = session.Run(&reader.value(), out);
        if (!result.ok() || result.value().rows_emitted != rows) {
          std::cerr << "streaming bench run failed\n";
          std::abort();
        }
        run_result = result.value();
      });
      const auto allocs =
          static_cast<double>(AllocationCount() - allocs_before);
      if (i == 0 || ms < best.cost.ms) best = {{ms, allocs}, run_result};
    }
    return best;
  };

  StreamingRepairOptions chunked_options;
  chunked_options.chunk_rows = kStreamChunkRows;
  const StreamCost streaming_run =
      stream_best_of("fig13_streaming", input_csv, index, chunked_options);
  const RunCost streaming = streaming_run.cost;

  // Durable streaming: the same chunked pipeline journaling every chunk
  // to a write-ahead log with one group fsync per commit
  // (docs/durability.md). check_regression.py --wal gates the journaling
  // tax against the no-WAL streaming section above.
  const std::string wal_path = "BENCH_repair.wal";
  WalRunHeader wal_header;
  wal_header.rule_fingerprint = RuleSetFingerprint(workload.rules);
  for (size_t a = 0; a < dup.num_columns(); ++a) {
    wal_header.attribute_names.push_back(
        dup.schema().attribute_name(static_cast<AttrId>(a)));
  }
  wal_header.chunk_rows = kStreamChunkRows;
  // WAL and no-WAL passes are interleaved within one loop so both see
  // the same machine conditions: the overhead ratio below compares
  // best-of numbers taken seconds apart, not sections apart, which is
  // what keeps a 10% gate meaningful on a shared machine.
  StreamCost wal_run;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_bytes = 0;
  double nowal_ms = streaming.ms;
  // Best WAL/no-WAL ratio over adjacent pairs: each iteration's two
  // runs execute back to back, so a load spike hits both sides of at
  // least one pair roughly equally and the min ratio converges on the
  // true journaling tax instead of the machine's mood.
  double best_overhead_ratio = 0;
  for (int i = 0; i < kStreamRuns; ++i) {
    std::remove(wal_path.c_str());
    StatusOr<ChunkJournal> journal =
        ChunkJournal::Create(wal_path, wal_header);
    if (!journal.ok()) {
      std::cerr << "cannot create " << wal_path << ": "
                << journal.status().message() << "\n";
      std::abort();
    }
    StreamingRepairOptions wal_options = chunked_options;
    wal_options.journal = &journal.value();
    std::istringstream in(input_csv);
    std::ostringstream out;
    const uint64_t allocs_before = AllocationCount();
    StreamingRepairResult run_result;
    const double ms = TimedMs("fig13_streaming_wal", [&] {
      StatusOr<CsvChunkReader> reader =
          CsvChunkReader::Open(in, "bench", workload.data.pool, {});
      StreamingRepairSession session(&index, wal_options);
      const auto result = session.Run(&reader.value(), out);
      if (!result.ok() || result.value().rows_emitted != rows) {
        std::cerr << "durable streaming bench run failed\n";
        std::abort();
      }
      run_result = result.value();
    });
    const auto allocs =
        static_cast<double>(AllocationCount() - allocs_before);
    if (i == 0 || ms < wal_run.cost.ms) {
      wal_run = {{ms, allocs}, run_result};
      wal_fsyncs = journal->fsync_count();
      wal_bytes = journal->appended_bytes();
    }
    if (!journal->Close().ok()) std::abort();
    {
      std::istringstream nowal_in(input_csv);
      std::ostringstream nowal_out;
      const double reference_ms = TimedMs("fig13_streaming_nowal", [&] {
        StatusOr<CsvChunkReader> reader = CsvChunkReader::Open(
            nowal_in, "bench", workload.data.pool, {});
        StreamingRepairSession session(&index, chunked_options);
        const auto result = session.Run(&reader.value(), nowal_out);
        if (!result.ok() || result.value().rows_emitted != rows) {
          std::cerr << "streaming bench run failed\n";
          std::abort();
        }
      });
      nowal_ms = std::min(nowal_ms, reference_ms);
      const double ratio = ms / reference_ms;
      if (i == 0 || ratio < best_overhead_ratio) {
        best_overhead_ratio = ratio;
      }
    }
  }
  std::remove(wal_path.c_str());

  // Out-of-core spill: the whole input as one chunk whose cell blocks
  // obey a resident budget of 8 blocks (comfortably above the 2-block
  // working-set floor, so requested == effective and the regression
  // gate's peak-vs-budget comparison is meaningful).
  const size_t block_bytes =
      RowStore::kRowsPerBlock * dup.num_columns() * sizeof(ValueId);
  const size_t spill_budget = 8 * block_bytes;
  StreamingRepairOptions spill_options;
  spill_options.chunk_rows = ~size_t{0};  // whole file; the budget rules
  spill_options.memory_budget_bytes = spill_budget;
  const StreamCost spill_run =
      stream_best_of("fig13_streaming_spill", input_csv, index, spill_options);

  // Column pruning, measured on the shape it exists for: wide rows where
  // only a few columns are rule-constrained and the rest are
  // high-cardinality free text (ids, timestamps, notes) that interning
  // would hash and keep forever. The hosp rules mention every hosp
  // column, so the base workload gains nothing from pruning; the wide
  // variant appends per-row-unique payload columns no rule mentions
  // (rule attr ids stay valid — payload columns go at the end) and
  // compares the same chunked stream with pruning off vs on.
  constexpr size_t kPayloadColumns = 8;
  std::vector<std::string> wide_names;
  for (size_t a = 0; a < dup.num_columns(); ++a) {
    wide_names.push_back(
        dup.schema().attribute_name(static_cast<AttrId>(a)));
  }
  for (size_t w = 0; w < kPayloadColumns; ++w) {
    wide_names.push_back("payload_" + std::to_string(w));
  }
  const auto wide_schema =
      std::make_shared<Schema>("hosp_wide", std::move(wide_names));
  Table wide(wide_schema, workload.data.pool);
  {
    Tuple row;
    for (size_t r = 0; r < dup.num_rows(); ++r) {
      row.clear();
      const TupleRef base = dup.row(r);
      for (size_t a = 0; a < base.size(); ++a) row.push_back(base[a]);
      for (size_t w = 0; w < kPayloadColumns; ++w) {
        row.push_back(workload.data.pool->Intern(
            "note-" + std::to_string(w) + "-" + std::to_string(r * 7919) +
            "-f8a3bc21"));
      }
      wide.AppendRow(row);
    }
  }
  RuleSet wide_rules(wide_schema, workload.data.pool);
  for (size_t i = 0; i < workload.rules.size(); ++i) {
    wide_rules.Add(workload.rules.rule(i));
  }
  const CompiledRuleIndex wide_index(&wide_rules);
  std::string wide_csv;
  {
    std::ostringstream csv;
    WriteCsv(wide, csv);
    wide_csv = csv.str();
  }
  StreamingRepairOptions wide_options;
  wide_options.chunk_rows = kStreamChunkRows;
  const StreamCost wide_run = stream_best_of("fig13_streaming_wide",
                                             wide_csv, wide_index,
                                             wide_options);
  StreamingRepairOptions pruned_options = wide_options;
  pruned_options.prune_columns = true;
  const StreamCost pruned_run = stream_best_of("fig13_streaming_pruned",
                                               wide_csv, wide_index,
                                               pruned_options);

  // On-disk rule dictionary (rules/rule_dict.h): the same serial chase
  // through a compiled, memory-mapped dictionary instead of the in-RAM
  // index. Three rows: in-RAM reference (measured here so dict and RAM
  // numbers share machine conditions), mmap-cold (fresh Open + Bind +
  // empty hot cache every run — the "first repair after compile"
  // shape), and mmap-warm (persistent handle, hot cache primed).
  // check_regression.py --ruledict gates warm against in-RAM.
  const std::string dict_path = "BENCH_repair.dict";
  {
    const Status compiled = CompileRuleDict(workload.rules, dict_path);
    if (!compiled.ok()) {
      std::cerr << "rule dict compile failed: " << compiled.message()
                << "\n";
      std::abort();
    }
  }
  auto dict_or = RuleDict::Open(dict_path);
  if (!dict_or.ok()) {
    std::cerr << "rule dict open failed: " << dict_or.status().message()
              << "\n";
    std::abort();
  }
  RuleDict& dict = **dict_or;
  if (!dict.Bind(dup.schema(), workload.data.pool).ok()) std::abort();
  const uint64_t dict_bytes = dict.file_bytes();

  const RunCost dict_inram = best_of("fig13_dict_inram", [&](Table* copy) {
    FastRepairer repairer(&index);
    repairer.RepairTable(copy);
  });
  RunCost dict_cold;
  for (int i = 0; i < kRuns; ++i) {
    Table copy = dup;
    const uint64_t allocs_before = AllocationCount();
    const double ms = TimedMs("fig13_dict_cold", [&] {
      auto cold = RuleDict::Open(dict_path);
      if (!cold.ok()) std::abort();
      if (!(*cold)->Bind(dup.schema(), workload.data.pool).ok()) {
        std::abort();
      }
      auto handle = (*cold)->MakeHandle();
      FastRepairer repairer(handle->source());
      repairer.RepairTable(&copy);
    });
    const auto allocs =
        static_cast<double>(AllocationCount() - allocs_before);
    if (i == 0 || ms < dict_cold.ms) dict_cold = {ms, allocs};
  }
  auto warm_handle = dict.MakeHandle();
  {
    Table warmup = dup;  // primes the hot posting cache, off the clock
    FastRepairer repairer(warm_handle->source());
    repairer.RepairTable(&warmup);
  }
  PostingCache* hot_cache = warm_handle->source().posting_cache();
  const uint64_t hot_hits_before = hot_cache->hits();
  const uint64_t hot_misses_before = hot_cache->misses();
  const RunCost dict_warm = best_of("fig13_dict_warm", [&](Table* copy) {
    FastRepairer repairer(warm_handle->source());
    repairer.RepairTable(copy);
  });
  const uint64_t hot_hits = hot_cache->hits() - hot_hits_before;
  const uint64_t hot_misses = hot_cache->misses() - hot_misses_before;
  const double hot_hit_rate =
      hot_hits + hot_misses == 0
          ? 0.0
          : static_cast<double>(hot_hits) /
                static_cast<double>(hot_hits + hot_misses);
  std::remove(dict_path.c_str());

  // Corpus-scale dictionary under a memory budget: hosp data streamed
  // in spill mode against a dictionary far larger than the budget —
  // the working-set claim of docs/rules.md. Reduced scale by default;
  // FIXREP_FULL_SCALE=1 (or FIXREP_RULEDICT_ROWS/_RULES) runs the
  // 1M-row x 1M-rule version. The data, corpus, and CSV text are built
  // and dropped before the measured region, and VmHWM is reset going
  // in, so rss_delta_bytes is what the dictionary-backed spill run
  // itself keeps resident — gated by check_regression.py --ruledict
  // against dict_bytes (the corpus must NOT become resident) while the
  // existing budget audit gates peak_resident_bytes.
  const ExperimentScale exp_scale = GetExperimentScale();
  const size_t budget_rows = EnvSizeT("FIXREP_RULEDICT_ROWS",
                                      exp_scale.full ? 1'000'000 : 60'000);
  const size_t budget_rules = EnvSizeT(
      "FIXREP_RULEDICT_RULES", exp_scale.full ? 1'000'000 : 150'000);
  const std::string scale_dict_path = "BENCH_repair_scale.dict";
  const std::string scale_csv_path = "BENCH_repair_scale.csv";
  const std::string scale_out_path = "BENCH_repair_scale.out.csv";
  size_t corpus_rules = 0;
  {
    HospOptions hosp;
    hosp.rows = budget_rows;
    hosp.num_hospitals = std::max<size_t>(budget_rows / 30, 50);
    hosp.seed = 0x4051;
    GeneratedData data = GenerateHosp(hosp);
    Table dirty = data.clean;
    NoiseOptions noise_options;
    noise_options.seed = 0x4051 ^ 0xd1e7;
    InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds),
                noise_options);
    // Organic rules from a bounded prefix (every hosp value pattern
    // recurs, so prefix rules repair the whole table); synthetic
    // CFD-shaped bulk on top brings the corpus to budget_rules.
    const size_t prefix_rows = std::min<size_t>(budget_rows, 60'000);
    Table prefix_clean(data.schema, data.pool);
    Table prefix_dirty(data.schema, data.pool);
    for (size_t r = 0; r < prefix_rows; ++r) {
      prefix_clean.AppendRow(data.clean.row(r));
      prefix_dirty.AppendRow(dirty.row(r));
    }
    RuleGenOptions rulegen;
    rulegen.max_rules = 1000;
    rulegen.seed = 0x4051 ^ 0x9e37;
    RuleSet corpus =
        GenerateRules(prefix_clean, prefix_dirty, data.fds, rulegen);
    if (corpus.size() < budget_rules) {
      ScaleRuleGenOptions scale_options;
      scale_options.scale = budget_rules - corpus.size();
      AppendScaleRules(&corpus, scale_options);
    }
    corpus_rules = corpus.size();
    if (!CompileRuleDict(corpus, scale_dict_path).ok()) std::abort();
    if (!TryWriteCsvFile(dirty, scale_csv_path).ok()) std::abort();
  }
  const uint64_t scale_dict_bytes = FileBytes(scale_dict_path);
  const size_t scale_block_bytes =
      RowStore::kRowsPerBlock * dup.num_columns() * sizeof(ValueId);
  // ~1/8 of the table stays resident, with a small floor above the
  // 2-block working-set minimum so requested == effective.
  const size_t scale_budget_bytes =
      std::max(8 * scale_block_bytes,
               budget_rows * dup.num_columns() * sizeof(ValueId) / 8);
  const bool rss_reset = ResetPeakRss();
  const uint64_t rss_before = ProcStatusBytes("VmRSS:");
  RepairReport budget_report;
  double budget_ms = 0;
  // Best-of-3 (single spill-heavy runs swing double-digit percentages
  // on a shared machine); the RSS window spans all three, which only
  // tightens the resident-set claim.
  for (int i = 0; i < 3; ++i) {
    std::ifstream scale_in(scale_csv_path);
    auto scale_pool = std::make_shared<ValuePool>();
    StatusOr<CsvChunkReader> reader =
        CsvChunkReader::Open(scale_in, "bench", scale_pool, {});
    if (!reader.ok()) std::abort();
    RepairConfig scale_config;
    scale_config.rules_dict = scale_dict_path;
    scale_config.chunk_rows = RepairConfig::kWholeFile;
    scale_config.memory_budget_bytes = scale_budget_bytes;
    RepairSession session(scale_config);
    std::ofstream scale_out(scale_out_path,
                            std::ios::binary | std::ios::trunc);
    const double ms = TimedMs("fig13_dict_budget", [&] {
      const auto report = session.RepairStream(&reader.value(), scale_out);
      if (!report.ok() || report.value().rows != budget_rows) {
        std::cerr << "dict budget run failed: "
                  << report.status().message() << "\n";
        std::abort();
      }
      budget_report = report.value();
    });
    if (i == 0 || ms < budget_ms) budget_ms = ms;
  }
  const uint64_t rss_peak = ProcStatusBytes("VmHWM:");
  const uint64_t rss_delta =
      rss_peak > rss_before ? rss_peak - rss_before : 0;
  const uint64_t hot_cache_bytes =
      dict.hot_cache_capacity() * sizeof(uint64_t) * 4;
  std::remove(scale_dict_path.c_str());
  std::remove(scale_csv_path.c_str());
  std::remove(scale_out_path.c_str());

  // Daemon overhead: the duplicate-heavy batch repaired through the
  // serve stack (unix-socket round trip, frame CRC, config headers,
  // CSV re-parse on the worker) vs. directly against the prebuilt
  // compiled index. Both sides skip index construction — the tenant
  // compiles once at Load() and the direct runs borrow `index` — so
  // the ratio isolates the wire + dispatch tax. check_regression.py
  // --daemon gates daemon_rows_per_sec >= 0.85 x direct_rows_per_sec.
  const std::string serve_rules_path = "BENCH_repair_serve.rules";
  const std::string serve_socket_path = "BENCH_repair_serve.sock";
  if (!TryWriteRulesFile(workload.rules, serve_rules_path).ok()) {
    std::abort();
  }
  std::string serve_csv;
  {
    std::ostringstream render;
    WriteCsv(dup, render);
    serve_csv = render.str();
  }
  const RepairConfig serve_config;  // serial defaults on both sides
  constexpr int kServeRuns = 5;
  double direct_serve_ms = 0;
  std::string direct_serve_out;
  for (int i = 0; i < kServeRuns; ++i) {
    std::string out;
    const double ms = TimedMs("fig13_daemon_direct", [&] {
      std::istringstream in(serve_csv);
      StatusOr<Table> table =
          ReadCsvLenient(in, "bench", workload.data.pool, {});
      if (!table.ok()) std::abort();
      RepairSession session(&index, serve_config);
      if (!session.Repair(&table.value()).ok()) std::abort();
      std::ostringstream rendered;
      WriteCsv(table.value(), rendered);
      out = rendered.str();
    });
    if (i == 0 || ms < direct_serve_ms) direct_serve_ms = ms;
    direct_serve_out = std::move(out);
  }
  double daemon_ms = 0;
  bool daemon_identical = true;
  {
    serve::TenantRegistry serve_registry;
    std::string spec = serve_rules_path + "@";
    const auto& attrs = workload.data.schema->attribute_names();
    for (size_t a = 0; a < attrs.size(); ++a) {
      if (a != 0) spec += ',';
      spec += attrs[a];
    }
    if (!serve_registry.Load("bench", spec).ok()) std::abort();
    std::remove(serve_socket_path.c_str());
    serve::DaemonOptions daemon_options;
    daemon_options.unix_socket_path = serve_socket_path;
    auto daemon = serve::RepairDaemon::Start(&serve_registry,
                                             std::move(daemon_options));
    if (!daemon.ok()) std::abort();
    serve::ClientOptions client_options;
    client_options.unix_socket_path = serve_socket_path;
    auto client = serve::Client::Connect(client_options);
    if (!client.ok()) std::abort();
    const auto config_headers = FormatRepairConfig(serve_config);
    for (int i = 0; i < kServeRuns; ++i) {
      std::string out;
      const double ms = TimedMs("fig13_daemon_submit", [&] {
        auto result =
            client.value().Submit("bench", config_headers, serve_csv);
        if (!result.ok()) std::abort();
        out = std::move(result.value().csv);
      });
      if (i == 0 || ms < daemon_ms) daemon_ms = ms;
      if (out != direct_serve_out) daemon_identical = false;
    }
    daemon.value()->Shutdown();
  }
  std::remove(serve_rules_path.c_str());
  std::remove(serve_socket_path.c_str());

  BenchJson json("BENCH_repair.json");
  json.Set("workload", "rows", static_cast<double>(rows));
  json.Set("workload", "rules", static_cast<double>(workload.rules.size()));
  json.Set("workload", "distinct_rows",
           static_cast<double>(std::max<size_t>(rows / 32, 1)));
  json.Set("workload", "thread_count", static_cast<double>(threads));
  json.Set("workload", "memo_enabled", g_config.use_memo ? 1.0 : 0.0);
  json.SetString("workload", "simd_kernel", SimdKernelName(active_kernel));
  json.Set("serial_baseline", "ms", baseline_ms);
  json.Set("serial_baseline", "rows_per_sec", rows / (baseline_ms / 1e3));
  json.Set("serial_baseline", "allocations", baseline.allocations);
  if (active_kernel != SimdKernel::kScalar) {
    json.Set("serial_nomemo_simd", "ms", simd.ms);
    json.Set("serial_nomemo_simd", "rows_per_sec", rows / (simd.ms / 1e3));
    json.Set("serial_nomemo_simd", "allocations", simd.allocations);
    json.Set("serial_nomemo_simd", "speedup_vs_scalar", baseline_ms / simd.ms);
  }
  json.Set("serial_memo", "ms", memo_ms);
  json.Set("serial_memo", "rows_per_sec", rows / (memo_ms / 1e3));
  json.Set("serial_memo", "allocations", memo.allocations);
  json.Set("pooled_memo", "ms", pooled_ms);
  json.Set("pooled_memo", "rows_per_sec", rows / (pooled_ms / 1e3));
  json.Set("pooled_memo", "allocations", pooled.allocations);
  json.Set("pooled_memo", "memo_hit_rate", hit_rate);
  json.Set("pooled_memo", "speedup_vs_baseline", baseline_ms / pooled_ms);
  json.Set("streaming_chunked", "ms", streaming.ms);
  json.Set("streaming_chunked", "rows_per_sec", rows / (streaming.ms / 1e3));
  json.Set("streaming_chunked", "allocations", streaming.allocations);
  json.Set("streaming_chunked", "chunk_rows",
           static_cast<double>(kStreamChunkRows));
  json.Set("streaming_wal", "ms", wal_run.cost.ms);
  json.Set("streaming_wal", "rows_per_sec", rows / (wal_run.cost.ms / 1e3));
  json.Set("streaming_wal", "allocations", wal_run.cost.allocations);
  json.Set("streaming_wal", "chunk_rows",
           static_cast<double>(kStreamChunkRows));
  // Fractional slowdown vs the interleaved no-WAL reference (best
  // adjacent pair); check_regression.py --wal gates this key directly.
  json.Set("streaming_wal", "wal_overhead", best_overhead_ratio - 1.0);
  json.Set("streaming_wal", "nowal_rows_per_sec", rows / (nowal_ms / 1e3));
  json.Set("streaming_wal", "fsyncs", static_cast<double>(wal_fsyncs));
  json.Set("streaming_wal", "fsyncs_per_chunk",
           static_cast<double>(wal_fsyncs) /
               std::max<double>(1.0, static_cast<double>(wal_run.result.chunks)));
  json.Set("streaming_wal", "wal_bytes", static_cast<double>(wal_bytes));
  json.Set("streaming_spill", "ms", spill_run.cost.ms);
  json.Set("streaming_spill", "rows_per_sec",
           rows / (spill_run.cost.ms / 1e3));
  json.Set("streaming_spill", "budget_bytes",
           static_cast<double>(spill_budget));
  json.Set("streaming_spill", "peak_resident_bytes",
           static_cast<double>(spill_run.result.peak_resident_bytes));
  json.Set("streaming_pruned", "ms", pruned_run.cost.ms);
  json.Set("streaming_pruned", "rows_per_sec",
           rows / (pruned_run.cost.ms / 1e3));
  json.Set("streaming_pruned", "columns_pruned",
           static_cast<double>(pruned_run.result.columns_pruned));
  json.Set("streaming_pruned", "payload_columns",
           static_cast<double>(kPayloadColumns));
  json.Set("streaming_pruned", "unpruned_ms", wide_run.cost.ms);
  json.Set("streaming_pruned", "speedup_vs_chunked",
           wide_run.cost.ms / pruned_run.cost.ms);
  json.Set("ruledict_inram", "ms", dict_inram.ms);
  json.Set("ruledict_inram", "rows_per_sec", rows / (dict_inram.ms / 1e3));
  json.Set("ruledict_inram", "allocations", dict_inram.allocations);
  json.Set("ruledict_cold", "ms", dict_cold.ms);
  json.Set("ruledict_cold", "rows_per_sec", rows / (dict_cold.ms / 1e3));
  json.Set("ruledict_cold", "allocations", dict_cold.allocations);
  json.Set("ruledict_warm", "ms", dict_warm.ms);
  json.Set("ruledict_warm", "rows_per_sec", rows / (dict_warm.ms / 1e3));
  json.Set("ruledict_warm", "allocations", dict_warm.allocations);
  json.Set("ruledict_warm", "hot_cache_hit_rate", hot_hit_rate);
  json.Set("ruledict_warm", "warm_vs_inram", dict_inram.ms / dict_warm.ms);
  json.Set("ruledict_warm", "dict_bytes", static_cast<double>(dict_bytes));
  json.Set("ruledict_budget", "ms", budget_ms);
  json.Set("ruledict_budget", "rows_per_sec",
           budget_rows / (budget_ms / 1e3));
  json.Set("ruledict_budget", "rows", static_cast<double>(budget_rows));
  json.Set("ruledict_budget", "corpus_rules",
           static_cast<double>(corpus_rules));
  json.Set("ruledict_budget", "cells_changed",
           static_cast<double>(budget_report.cells_changed));
  json.Set("ruledict_budget", "dict_bytes",
           static_cast<double>(scale_dict_bytes));
  json.Set("ruledict_budget", "budget_bytes",
           static_cast<double>(scale_budget_bytes));
  json.Set("ruledict_budget", "peak_resident_bytes",
           static_cast<double>(budget_report.peak_resident_bytes));
  json.Set("ruledict_budget", "hot_cache_bytes",
           static_cast<double>(hot_cache_bytes));
  json.Set("ruledict_budget", "rss_reset", rss_reset ? 1.0 : 0.0);
  json.Set("ruledict_budget", "rss_before_bytes",
           static_cast<double>(rss_before));
  json.Set("ruledict_budget", "rss_peak_bytes",
           static_cast<double>(rss_peak));
  json.Set("ruledict_budget", "rss_delta_bytes",
           static_cast<double>(rss_delta));
  json.Set("daemon_overhead", "direct_ms", direct_serve_ms);
  json.Set("daemon_overhead", "direct_rows_per_sec",
           rows / (direct_serve_ms / 1e3));
  json.Set("daemon_overhead", "daemon_ms", daemon_ms);
  json.Set("daemon_overhead", "daemon_rows_per_sec",
           rows / (daemon_ms / 1e3));
  json.Set("daemon_overhead", "throughput_ratio",
           direct_serve_ms / daemon_ms);
  json.Set("daemon_overhead", "byte_identical", daemon_identical ? 1.0 : 0.0);
  json.Set("process", "peak_rss_bytes", PeakRssBytes());
  json.Set("process", "allocations_total",
           static_cast<double>(AllocationCount()));
  json.Set("phases_ns", "index_build",
           SpanTotalNanos("lrepair.index_build"));
  json.Set("phases_ns", "chase", SpanTotalNanos("lrepair.chase"));
  json.Set("phases_ns", "parallel_repair_table",
           SpanTotalNanos("parallel.repair_table"));
  if (json.Write()) {
    std::cout << "wrote " << json.path() << " (speedup "
              << FormatDouble(baseline_ms / pooled_ms, 2) << "x, memo hit "
              << FormatDouble(hit_rate * 100.0, 1) << "%, kernel "
              << SimdKernelName(active_kernel);
    if (active_kernel != SimdKernel::kScalar) {
      std::cout << ", simd speedup "
                << FormatDouble(baseline_ms / simd.ms, 2) << "x";
    }
    std::cout << ")\n";
  }
  const std::string metrics = DescribeMetrics();
  if (!metrics.empty()) std::cout << metrics << "\n";
  MaybeDumpMetrics();
}

// One GET /metrics against our own endpoint, mid-run: the smoke test
// check_perf_regression relies on. Returns false (after printing why)
// when the scrape fails — a broken endpoint must fail the bench.
bool SelfScrape(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "self-scrape: socket: " << std::strerror(errno) << "\n";
    return false;
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::cerr << "self-scrape: connect: " << std::strerror(errno) << "\n";
    close(fd);
    return false;
  }
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  if (send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    std::cerr << "self-scrape: send failed\n";
    close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  if (response.find("200 OK") == std::string::npos ||
      response.find("fixrep_") == std::string::npos) {
    std::cerr << "self-scrape: unexpected response:\n" << response << "\n";
    return false;
  }
  std::cout << "self-scrape ok: " << response.size()
            << " bytes from 127.0.0.1:" << port << "/metrics\n";
  return true;
}

}  // namespace
}  // namespace fixrep::bench

int main(int argc, char** argv) {
  fixrep::bench::g_config = fixrep::ParseBenchRepairConfig(argc, argv);

  // FIXREP_TELEMETRY_OUT: journal the run (heartbeats + chunk events).
  std::unique_ptr<fixrep::TelemetryJournal> journal;
  std::unique_ptr<fixrep::HeartbeatSampler> sampler;
  const char* journal_path = std::getenv("FIXREP_TELEMETRY_OUT");
  if (journal_path != nullptr && *journal_path != '\0') {
    auto opened = fixrep::TelemetryJournal::Open(journal_path);
    if (!opened.ok()) {
      std::cerr << opened.status().message() << "\n";
      return 1;
    }
    journal = std::move(opened).value();
    journal->Append(fixrep::TelemetryEvent("run_start")
                        .SetString("command", "bench_fig13_repair"));
    fixrep::SetGlobalJournal(journal.get());
    fixrep::HeartbeatOptions heartbeat;
    heartbeat.interval_ms = 250;  // streaming sections run ~1s each
    heartbeat.journal = journal.get();
    sampler = std::make_unique<fixrep::HeartbeatSampler>(heartbeat);
    sampler->Start();
  }

  // FIXREP_METRICS_PORT: serve GET /metrics (0 = ephemeral).
  std::unique_ptr<fixrep::MetricsServer> server;
  const char* port_env = std::getenv("FIXREP_METRICS_PORT");
  int exit_code = 0;
  if (port_env != nullptr && *port_env != '\0') {
    fixrep::MetricsServerOptions options;
    options.tcp_port = std::atoi(port_env);
    auto started = fixrep::MetricsServer::Start(std::move(options));
    if (!started.ok()) {
      std::cerr << started.status().message() << "\n";
      exit_code = 1;
    } else {
      server = std::move(started).value();
      std::cout << "serving /metrics on 127.0.0.1:" << server->port()
                << "\n";
    }
  }

  if (exit_code == 0) {
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    fixrep::bench::WriteRepairJson();
    // The measured pass has run but the endpoint is still live — the
    // scrape must see the run's counters, not an empty registry.
    if (server != nullptr && !fixrep::bench::SelfScrape(server->port())) {
      exit_code = 1;
    }
  }

  if (sampler != nullptr) sampler->Stop();  // emits the final heartbeat
  if (server != nullptr) server->Stop();
  if (journal != nullptr) {
    fixrep::SetGlobalJournal(nullptr);
    journal->Append(
        fixrep::TelemetryEvent("run_end")
            .Set("exit_code", static_cast<uint64_t>(exit_code))
            .Set("rss_peak_bytes", fixrep::TelemetryPeakRssBytes()));
  }
  if (exit_code == 0) ::benchmark::Shutdown();
  return exit_code;
}
