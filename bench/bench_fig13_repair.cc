// Fig. 13 — repair efficiency: cRepair vs lRepair while the rule count
// grows (hosp 100..1000 rules, uis 10..100 rules).
//
// Paper shape: lRepair is the faster engine except at very small rule
// counts, where the index overhead lets cRepair keep up; both are linear
// in the data size.

#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"

namespace fixrep::bench {
namespace {

// Workloads are expensive to build; cache one per dataset and bench rule
// prefixes out of it. google-benchmark may re-enter the function, so the
// cache is a function-local static.
const Workload& HospWorkload() {
  static const Workload* workload = [] {
    const ExperimentScale scale = GetExperimentScale();
    return new Workload(
        MakeHospWorkload(scale.hosp_rows, scale.hosp_rules));
  }();
  return *workload;
}

const Workload& UisWorkload() {
  static const Workload* workload = [] {
    const ExperimentScale scale = GetExperimentScale();
    return new Workload(MakeUisWorkload(scale.uis_rows, scale.uis_rules));
  }();
  return *workload;
}

template <typename Repairer>
void RepairWholeTable(::benchmark::State& state, const Workload& workload) {
  const RuleSet rules =
      workload.rules.Prefix(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    Table copy = workload.dirty;  // repairs mutate; measure on a fresh copy
    Repairer repairer(&rules);
    state.ResumeTiming();
    repairer.RepairTable(&copy);
    ::benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * workload.dirty.num_rows()));
  state.counters["rules"] = static_cast<double>(rules.size());
}

void BM_Hosp_cRepair(::benchmark::State& state) {
  RepairWholeTable<ChaseRepairer>(state, HospWorkload());
}
void BM_Hosp_lRepair(::benchmark::State& state) {
  RepairWholeTable<FastRepairer>(state, HospWorkload());
}
void BM_Uis_cRepair(::benchmark::State& state) {
  RepairWholeTable<ChaseRepairer>(state, UisWorkload());
}
void BM_Uis_lRepair(::benchmark::State& state) {
  RepairWholeTable<FastRepairer>(state, UisWorkload());
}

BENCHMARK(BM_Hosp_cRepair)->DenseRange(100, 1000, 300)
    ->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_Hosp_lRepair)->DenseRange(100, 1000, 300)
    ->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_Uis_cRepair)->DenseRange(10, 100, 30)
    ->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_Uis_lRepair)->DenseRange(10, 100, 30)
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace fixrep::bench
