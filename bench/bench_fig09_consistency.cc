// Fig. 9 — efficiency of consistency checking.
//
// For hosp (rule counts 100..1000) and uis (10..100), times both
// checkers:
//  * worst case: the set is consistent, so every pair is examined;
//  * real cases (x10): an inconsistent pair is planted at a random
//    position and the checker early-exits on detection.
//
// Paper shape: isConsist_r is faster than isConsist_t; real cases are at
// or below their worst case; 1000 rules check in seconds.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "eval/text_table.h"
#include "rules/consistency.h"

namespace fixrep::bench {
namespace {

// Clones a random rule with a diverging fact so the pair (original,
// clone) violates case 1 of Fig. 4, and inserts it at a random index.
RuleSet PlantConflict(const RuleSet& rules, Rng* rng) {
  RuleSet planted = rules;
  const FixingRule& victim = planted.rule(rng->Uniform(planted.size()));
  FixingRule conflicting = victim;
  // Any value outside the negative patterns that differs from the
  // original fact diverges; fabricate one.
  conflicting.fact =
      planted.pool().Intern("__conflict_fact_" +
                            std::to_string(rng->Next()));
  RuleSet out(planted.schema_ptr(), planted.pool_ptr());
  const size_t position = rng->Uniform(planted.size() + 1);
  for (size_t i = 0; i < planted.size(); ++i) {
    if (i == position) out.Add(conflicting);
    out.Add(planted.rule(i));
  }
  if (position == planted.size()) out.Add(conflicting);
  return out;
}

using Checker = bool (*)(const RuleSet&, std::vector<Conflict>*, bool);

double TimeChecker(Checker checker, const RuleSet& rules,
                   bool expect_consistent) {
  Timer timer;
  const bool consistent = checker(rules, nullptr, false);
  const double ms = timer.ElapsedMillis();
  if (consistent != expect_consistent) {
    std::cerr << "unexpected checker verdict\n";
  }
  return ms;
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

void RunDataset(const char* name, const Workload& workload,
                const std::vector<size_t>& rule_counts, uint64_t seed) {
  std::cout << "\n-- Fig. 9 (" << name << "): consistency-check time --\n";
  TextTable table({"|Sigma|", "isConsist_t worst (ms)",
                   "isConsist_t real med/min/max (ms)",
                   "isConsist_r worst (ms)",
                   "isConsist_r real med/min/max (ms)"});
  Rng rng(seed);
  for (const size_t count : rule_counts) {
    const RuleSet prefix = workload.rules.Prefix(count);
    const double enum_worst = TimeChecker(&IsConsistentEnum, prefix, true);
    const double char_worst = TimeChecker(&IsConsistentChar, prefix, true);
    std::vector<double> enum_real;
    std::vector<double> char_real;
    for (int k = 0; k < 10; ++k) {
      const RuleSet planted = PlantConflict(prefix, &rng);
      enum_real.push_back(TimeChecker(&IsConsistentEnum, planted, false));
      char_real.push_back(TimeChecker(&IsConsistentChar, planted, false));
    }
    auto triple = [](std::vector<double> xs) {
      const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
      return FormatDouble(Median(xs), 2) + " / " + FormatDouble(*lo, 2) +
             " / " + FormatDouble(*hi, 2);
    };
    table.AddRow({std::to_string(prefix.size()),
                  FormatDouble(enum_worst, 2), triple(enum_real),
                  FormatDouble(char_worst, 2), triple(char_real)});
  }
  table.Print(std::cout);
}

void Run() {
  const ExperimentScale scale = GetExperimentScale();
  std::cout << "Fig. 9 reproduction — " << DescribeScale(scale) << "\n";

  const Workload hosp = MakeHospWorkload(scale.hosp_rows, scale.hosp_rules);
  std::vector<size_t> hosp_counts;
  for (size_t n = 100; n <= scale.hosp_rules; n += 100) {
    hosp_counts.push_back(n);
  }
  RunDataset("hosp", hosp, hosp_counts, 0xf19);

  const Workload uis = MakeUisWorkload(scale.uis_rows, scale.uis_rules);
  std::vector<size_t> uis_counts;
  for (size_t n = 10; n <= scale.uis_rules; n += 10) {
    uis_counts.push_back(n);
  }
  RunDataset("uis", uis, uis_counts, 0xf19b);

  std::cout << "\nShape check vs paper: isConsist_r <= isConsist_t per row; "
               "real cases <= worst case; growth is quadratic in |Sigma|.\n";
}

}  // namespace
}  // namespace fixrep::bench

int main() {
  fixrep::bench::Run();
  return 0;
}
