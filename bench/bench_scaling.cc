// Data-size scaling (supports the paper's "linear in data size" claim
// for the repair algorithms, Exp-3): wall-clock of lRepair, cRepair, and
// FD violation detection while the hosp row count doubles.

#include <iostream>
#include <string>

#include "bench_util.h"
#include "deps/violation.h"
#include "eval/text_table.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"

namespace fixrep::bench {
namespace {

void Run() {
  const ExperimentScale scale = GetExperimentScale();
  std::cout << "Data-size scaling — " << DescribeScale(scale) << "\n\n";
  TextTable table({"rows", "lRepair (ms)", "us/row", "cRepair (ms)",
                   "violation detect (ms)"});
  const size_t max_rows = scale.full ? 115000 : 80000;
  for (size_t rows = 10000; rows <= max_rows; rows *= 2) {
    const Workload workload = MakeHospWorkload(rows, 500);
    double lrepair_ms = 0;
    {
      Table copy = workload.dirty;
      FastRepairer repairer(&workload.rules);
      lrepair_ms = TimedMs("lrepair", [&] { repairer.RepairTable(&copy); });
    }
    double crepair_ms = 0;
    {
      Table copy = workload.dirty;
      ChaseRepairer repairer(&workload.rules);
      crepair_ms = TimedMs("crepair", [&] { repairer.RepairTable(&copy); });
    }
    size_t violations = 0;
    const double detect_ms = TimedMs("violation_detect", [&] {
      for (const auto& fd : NormalizeToSingleRhs(workload.data.fds)) {
        violations += DetectViolations(workload.dirty, fd).size();
      }
    });
    if (violations == SIZE_MAX) std::cout << "";  // keep it live
    table.AddRow({std::to_string(rows), FormatDouble(lrepair_ms, 2),
                  FormatDouble(lrepair_ms * 1000.0 / rows, 3),
                  FormatDouble(crepair_ms, 2),
                  FormatDouble(detect_ms, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check vs paper: per-row lRepair cost stays flat as "
               "the table doubles (linear scaling).\n";
  const std::string metrics = DescribeMetrics();
  if (!metrics.empty()) std::cout << "\n" << metrics << "\n";
  MaybeDumpMetrics();  // FIXREP_METRICS_OUT=path for the full JSON
}

}  // namespace
}  // namespace fixrep::bench

int main() {
  fixrep::bench::Run();
  return 0;
}
