// Data-size scaling (supports the paper's "linear in data size" claim
// for the repair algorithms, Exp-3): wall-clock of lRepair (serial and
// pooled+memoized), cRepair, and FD violation detection while the hosp
// row count doubles. Emits BENCH_repair.json (rows/s per size, memo hit
// rate, thread count). Flags: --threads=N, --no-memo.

#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "deps/violation.h"
#include "eval/text_table.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"

namespace fixrep::bench {
namespace {

void Run(const BenchRepairConfig& config) {
  const ExperimentScale scale = GetExperimentScale();
  const size_t threads = config.threads == 0
                             ? ThreadPool::Global().num_workers() + 1
                             : config.threads;
  std::cout << "Data-size scaling — " << DescribeScale(scale) << "\n"
            << "pooled engine: " << threads << " thread(s), memo "
            << (config.use_memo ? "on" : "off") << "\n\n";
  TextTable table({"rows", "lRepair (ms)", "us/row", "pooled+memo (ms)",
                   "cRepair (ms)", "violation detect (ms)"});
  BenchJson json("BENCH_repair.json");
  json.Set("workload", "thread_count", static_cast<double>(threads));
  json.Set("workload", "memo_enabled", config.use_memo ? 1.0 : 0.0);
  const size_t max_rows = scale.full ? 115000 : 80000;
  for (size_t rows = 10000; rows <= max_rows; rows *= 2) {
    const Workload workload = MakeHospWorkload(rows, 500);
    double lrepair_ms = 0;
    double lrepair_allocs = 0;
    {
      Table copy = workload.dirty;
      FastRepairer repairer(&workload.rules);
      const uint64_t allocs_before = AllocationCount();
      lrepair_ms = TimedMs("lrepair", [&] { repairer.RepairTable(&copy); });
      lrepair_allocs =
          static_cast<double>(AllocationCount() - allocs_before);
    }
    double pooled_ms = 0;
    double pooled_allocs = 0;
    {
      Table copy = workload.dirty;
      const CompiledRuleIndex index(&workload.rules);
      ParallelRepairOptions options;
      options.threads = config.threads;
      options.use_memo = config.use_memo;
      const uint64_t allocs_before = AllocationCount();
      pooled_ms = TimedMs("pooled_memo", [&] {
        ParallelRepairTable(index, &copy, options);
      });
      pooled_allocs =
          static_cast<double>(AllocationCount() - allocs_before);
    }
    double crepair_ms = 0;
    {
      Table copy = workload.dirty;
      ChaseRepairer repairer(&workload.rules);
      crepair_ms = TimedMs("crepair", [&] { repairer.RepairTable(&copy); });
    }
    size_t violations = 0;
    const double detect_ms = TimedMs("violation_detect", [&] {
      for (const auto& fd : NormalizeToSingleRhs(workload.data.fds)) {
        violations += DetectViolations(workload.dirty, fd).size();
      }
    });
    if (violations == SIZE_MAX) std::cout << "";  // keep it live
    table.AddRow({std::to_string(rows), FormatDouble(lrepair_ms, 2),
                  FormatDouble(lrepair_ms * 1000.0 / rows, 3),
                  FormatDouble(pooled_ms, 2), FormatDouble(crepair_ms, 2),
                  FormatDouble(detect_ms, 2)});
    const std::string section = "scaling_" + std::to_string(rows);
    json.Set(section, "lrepair_rows_per_sec", rows / (lrepair_ms / 1e3));
    json.Set(section, "lrepair_allocations", lrepair_allocs);
    json.Set(section, "pooled_memo_rows_per_sec",
             rows / (pooled_ms / 1e3));
    json.Set(section, "pooled_memo_allocations", pooled_allocs);
    json.Set(section, "crepair_rows_per_sec", rows / (crepair_ms / 1e3));
  }
  table.Print(std::cout);
  std::cout << "\nShape check vs paper: per-row lRepair cost stays flat as "
               "the table doubles (linear scaling).\n";
  const double hit_rate = MemoHitRate();
  if (hit_rate >= 0.0) json.Set("workload", "memo_hit_rate", hit_rate);
  json.Set("phases_ns", "index_build", SpanTotalNanos("lrepair.index_build"));
  json.Set("phases_ns", "chase", SpanTotalNanos("lrepair.chase"));
  json.Set("phases_ns", "parallel_repair_table",
           SpanTotalNanos("parallel.repair_table"));
  json.Set("process", "peak_rss_bytes", PeakRssBytes());
  json.Set("process", "allocations_total",
           static_cast<double>(AllocationCount()));
  if (json.Write()) std::cout << "wrote " << json.path() << "\n";
  const std::string metrics = DescribeMetrics();
  if (!metrics.empty()) std::cout << "\n" << metrics << "\n";
  MaybeDumpMetrics();  // FIXREP_METRICS_OUT=path for the full JSON
}

}  // namespace
}  // namespace fixrep::bench

int main(int argc, char** argv) {
  fixrep::bench::Run(fixrep::ParseBenchRepairConfig(argc, argv));
  return 0;
}
