// Ablations for the design choices DESIGN.md calls out:
//
//  A. Rule provenance: oracle-seeded rules (Section 7.1 expert workflow)
//     vs automatic discovery (conservative and permissive modes) — the
//     cost of removing the expert.
//  B. Heu cost model: unit-cost plurality vs similarity-weighted cost
//     (Bohannon et al.'s model) across error types.
//  C. Parallel repair: thread scaling of the tuple-parallel engine.
//  D. User effort: fixing rules (zero interactions) vs editing rules
//     with master data (one certification per application).

#include <iostream>
#include <string>
#include <thread>

#include "baselines/editing_master.h"
#include "baselines/heu.h"
#include "bench_util.h"
#include "common/timer.h"
#include "deps/violation.h"
#include "eval/metrics.h"
#include "eval/text_table.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"
#include "rulegen/discovery.h"

namespace fixrep::bench {
namespace {

void RuleProvenanceAblation(const Workload& workload) {
  std::cout << "\n-- Ablation A: oracle rules vs automatic discovery --\n";
  TextTable table({"rule source", "rules", "precision", "recall"});
  auto evaluate = [&](const std::string& name, const RuleSet& rules) {
    Table repaired = workload.dirty;
    FastRepairer repairer(&rules);
    repairer.RepairTable(&repaired);
    const Accuracy accuracy =
        EvaluateRepair(workload.data.clean, workload.dirty, repaired);
    table.AddRow({name, std::to_string(rules.size()),
                  FormatDouble(accuracy.precision()),
                  FormatDouble(accuracy.recall())});
  };
  evaluate("oracle seeds (Sec. 7.1)", workload.rules);
  DiscoveryOptions conservative;
  conservative.max_rules = workload.rules.size();
  evaluate("discovery, conservative",
           DiscoverRules(workload.dirty, workload.data.fds, conservative));
  DiscoveryOptions permissive = conservative;
  permissive.exclude_foreign_consensus = false;
  evaluate("discovery, permissive",
           DiscoverRules(workload.dirty, workload.data.fds, permissive));
  table.Print(std::cout);
}

void HeuCostModelAblation(size_t rows) {
  std::cout << "\n-- Ablation B: Heu unit cost vs similarity cost --\n";
  TextTable table({"typo share", "plurality P", "plurality R",
                   "similarity P", "similarity R"});
  for (const double typo_share : {0.0, 0.5, 1.0}) {
    const Workload workload =
        MakeHospWorkload(rows, 100, 0.10, typo_share);
    Accuracy accuracy[2];
    for (int variant = 0; variant < 2; ++variant) {
      HeuOptions options;
      options.use_similarity_cost = (variant == 1);
      Table repaired = workload.dirty;
      HeuRepairer heu(workload.data.fds, options);
      heu.Repair(&repaired);
      accuracy[variant] =
          EvaluateRepair(workload.data.clean, workload.dirty, repaired);
    }
    table.AddRow({FormatDouble(typo_share, 1),
                  FormatDouble(accuracy[0].precision()),
                  FormatDouble(accuracy[0].recall()),
                  FormatDouble(accuracy[1].precision()),
                  FormatDouble(accuracy[1].recall())});
  }
  table.Print(std::cout);
}

void ParallelScalingAblation(const Workload& workload) {
  std::cout << "\n-- Ablation C: parallel repair scaling ("
            << workload.dirty.num_rows() << " rows, "
            << workload.rules.size() << " rules) --\n";
  TextTable table({"threads", "time (ms)", "speedup"});
  double base_ms = 0;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    // Median of three runs to steady the small numbers.
    double best_ms = 1e100;
    for (int run = 0; run < 3; ++run) {
      Table copy = workload.dirty;
      Timer timer;
      ParallelRepairTable(workload.rules, &copy, threads);
      best_ms = std::min(best_ms, timer.ElapsedMillis());
    }
    if (threads == 1) base_ms = best_ms;
    table.AddRow({std::to_string(threads), FormatDouble(best_ms, 2),
                  FormatDouble(base_ms / best_ms, 2) + "x"});
  }
  table.Print(std::cout);
  std::cout << "(hardware threads available: "
            << std::thread::hardware_concurrency()
            << " — expect ~linear scaling only when > 1; correctness is "
               "bit-identical to serial either way, see parallel_test)\n";
}

void UserEffortAblation(const Workload& workload) {
  std::cout << "\n-- Ablation D: user effort, fixing rules vs editing "
               "rules with master data --\n";
  // Master data: the hospital dimension keyed by phone number, projected
  // from the clean data (master data is correct by definition).
  const Schema& schema = workload.data.clean.schema();
  const AttrId phn = schema.AttributeIndex("phn");
  const std::vector<AttrId> copied = {
      schema.AttributeIndex("zip"), schema.AttributeIndex("city"),
      schema.AttributeIndex("state")};
  Table master(workload.data.clean.schema_ptr(),
               workload.data.clean.pool_ptr());
  {
    LhsPartition by_phn = PartitionBy(workload.data.clean, {phn});
    for (const auto& [key, rows] : by_phn) {
      master.AppendRow(workload.data.clean.row(rows[0]));
    }
  }
  std::vector<EditingRule> editing_rules;
  for (const AttrId target : copied) {
    EditingRule rule;
    rule.match_attrs = {phn};
    rule.master_match_attrs = {phn};
    rule.update_attr = target;
    rule.master_update_attr = target;
    editing_rules.push_back(rule);
  }

  TextTable table({"method", "user interactions", "cells changed",
                   "precision", "recall"});
  {
    Table repaired = workload.dirty;
    FastRepairer repairer(&workload.rules);
    repairer.RepairTable(&repaired);
    const Accuracy accuracy =
        EvaluateRepair(workload.data.clean, workload.dirty, repaired);
    table.AddRow({"Fix (lRepair)", "0",
                  std::to_string(accuracy.cells_changed),
                  FormatDouble(accuracy.precision()),
                  FormatDouble(accuracy.recall())});
  }
  {
    Table repaired = workload.dirty;
    MasterEditRepairer repairer(editing_rules, &master);
    const EditingStats stats = repairer.Repair(
        &repaired, EditingUserModel::kOracle, &workload.data.clean);
    const Accuracy accuracy =
        EvaluateRepair(workload.data.clean, workload.dirty, repaired);
    table.AddRow({"Edit (oracle user)",
                  std::to_string(stats.user_interactions),
                  std::to_string(accuracy.cells_changed),
                  FormatDouble(accuracy.precision()),
                  FormatDouble(accuracy.recall())});
  }
  table.Print(std::cout);
  std::cout << "(editing rules repair zip/city/state only — what the "
               "master relation covers — and pay one certification per "
               "tuple-rule match)\n";
}

void Run() {
  const ExperimentScale scale = GetExperimentScale();
  std::cout << "Design ablations — " << DescribeScale(scale) << "\n";
  const Workload workload =
      MakeHospWorkload(scale.hosp_rows, scale.hosp_rules);
  RuleProvenanceAblation(workload);
  HeuCostModelAblation(scale.hosp_rows);
  ParallelScalingAblation(workload);
  UserEffortAblation(workload);
}

}  // namespace
}  // namespace fixrep::bench

int main() {
  fixrep::bench::Run();
  return 0;
}
