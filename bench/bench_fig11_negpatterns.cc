// Fig. 11 — the role of negative patterns (hosp).
//
//  (a) distribution of negative-pattern counts across the generated
//      rules (paper: most rules have few — around 80% have two);
//  (b) accuracy while the per-rule negative-pattern enrichment budget
//      grows: more negative patterns should lift recall while precision
//      stays high.

#include <algorithm>
#include <iostream>
#include <map>
#include <string>

#include "bench_util.h"
#include "eval/metrics.h"
#include "eval/text_table.h"
#include "common/random.h"
#include "repair/lrepair.h"

namespace fixrep::bench {
namespace {

void Distribution(const Workload& workload) {
  std::cout << "\n-- Fig. 11(a): negative patterns per rule (" <<
      workload.rules.size() << " hosp rules) --\n";
  std::map<size_t, size_t> histogram;
  for (const auto& rule : workload.rules.rules()) {
    ++histogram[rule.negative_patterns.size()];
  }
  TextTable table({"#negative patterns", "rules", "share"});
  for (const auto& [patterns, count] : histogram) {
    table.AddRow({std::to_string(patterns), std::to_string(count),
                  FormatDouble(100.0 * count / workload.rules.size(), 1) +
                      "%"});
  }
  table.Print(std::cout);
}

// The paper grows/shrinks the negative patterns of a FIXED rule set
// ("varying the number of negative patterns for all rules in total").
// We reproduce that by randomly keeping a fraction of every rule's
// negative patterns (always at least one — a fixing rule without
// negative patterns is not a rule). Removing values can never introduce
// conflicts, so the subsets stay consistent.
void AccuracySweep(const Workload& workload) {
  std::cout << "\n-- Fig. 11(b): accuracy vs total negative patterns --\n";
  TextTable table({"kept fraction", "total neg patterns", "precision",
                   "recall"});
  Rng rng(0xf11b);
  for (const double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    RuleSet rules(workload.rules.schema_ptr(), workload.rules.pool_ptr());
    size_t total_negatives = 0;
    for (const auto& original : workload.rules.rules()) {
      FixingRule rule = original;
      std::vector<ValueId> kept;
      for (const ValueId v : rule.negative_patterns) {
        if (rng.Bernoulli(fraction)) kept.push_back(v);
      }
      if (kept.empty()) {
        kept.push_back(
            rule.negative_patterns[rng.Uniform(
                rule.negative_patterns.size())]);
      }
      rule.negative_patterns = std::move(kept);
      total_negatives += rule.negative_patterns.size();
      rules.Add(std::move(rule));
    }
    Table repaired = workload.dirty;
    FastRepairer repairer(&rules);
    repairer.RepairTable(&repaired);
    const Accuracy accuracy =
        EvaluateRepair(workload.data.clean, workload.dirty, repaired);
    table.AddRow({FormatDouble(fraction, 1),
                  std::to_string(total_negatives),
                  FormatDouble(accuracy.precision()),
                  FormatDouble(accuracy.recall())});
  }
  table.Print(std::cout);
}

void Run() {
  const ExperimentScale scale = GetExperimentScale();
  std::cout << "Fig. 11 reproduction — " << DescribeScale(scale) << "\n";
  const Workload workload =
      MakeHospWorkload(scale.hosp_rows, scale.hosp_rules);
  Distribution(workload);
  AccuracySweep(workload);
  std::cout << "\nShape check vs paper: the distribution is bottom-heavy "
               "(most rules carry few negative patterns); growing the "
               "negative-pattern budget raises recall at high precision.\n";
}

}  // namespace
}  // namespace fixrep::bench

int main() {
  fixrep::bench::Run();
  return 0;
}
