#!/usr/bin/env python3
"""Guard against repair-throughput regressions.

Compares every *rows_per_sec* entry of a freshly generated
BENCH_repair.json against the committed baseline and exits non-zero when
any entry present in both files has dropped by more than --tolerance
(default 25%: wall-clock sections on a shared machine see double-digit
scheduler noise between runs, while the regressions this guards against
-- losing memoization, pooling, or block reuse -- cost 2-10x). Entries present on only one side are reported and skipped
(bench_fig13_repair and bench_scaling emit different section sets into
the same file), but finding *no* comparable entry at all is an error —
that means the check compared the wrong files.

Additionally audits the out-of-core sections of the *current* run: any
section reporting both budget_bytes and peak_resident_bytes (the
streaming_spill workload) fails the check when the peak resident set
exceeds the requested budget by more than --rss-tolerance (default 15%)
— the spill machinery must actually honor its memory budget, not just
stay fast.

With --wal, additionally audits the durable-streaming section of the
*current* run: streaming_wal (the chunked pipeline journaling every
committed chunk to a write-ahead log, docs/durability.md) must keep its
rows/s within --wal-tolerance (default 10%) of streaming_chunked, the
identical pipeline without a WAL — journaling is only on by default in
the CLI because it is nearly free, and this gate keeps it that way. The
section must also report at most one fsync per chunk beyond the header
sync (the group-commit contract).

With --ruledict, additionally audits the on-disk rule dictionary
sections of the *current* run (docs/rules.md): ruledict_warm (serial
chase through the memory-mapped dictionary with a primed hot posting
cache) must keep its rows/s within --ruledict-tolerance (default 15%)
of ruledict_inram, the same chase over the in-RAM compiled index
measured seconds earlier in the same process — the mmap seam must cost
(nearly) nothing once warm. And ruledict_budget (corpus-scale
dictionary streamed under a spill budget) must keep the RSS the run
itself added (rss_delta_bytes, measured from a reset VmHWM) below its
dictionary's file size — the corpus must stay on disk, not become
resident; its peak_resident_bytes/budget_bytes pair is gated by the
standing memory-budget audit like any spilled section.

With --daemon, additionally audits the daemon_overhead section of the
*current* run (docs/serving.md): daemon_rows_per_sec (the hosp batch
submitted to an in-process repair daemon over a unix socket — framing,
CRC, config-header parse, CSV re-parse on a pool worker) must stay
within --daemon-tolerance (default 15%) of direct_rows_per_sec, the
same batch repaired in-process against the same prebuilt compiled
index — the serve stack must be a thin veneer, not a second engine.
The served bytes must also be identical to the direct output
(byte_identical).

With --journal, additionally validates the telemetry journal the bench
run wrote (FIXREP_TELEMETRY_OUT, see docs/observability.md): every line
must be a JSON object carrying "event" and "t_ms", the journal must open
with journal_open and contain at least one heartbeat, t_ms and the
heartbeat rows counter must be nondecreasing, chunk rows_total must be
nondecreasing within each streaming section, and any sample reporting a
spill budget must keep peak_resident_bytes within the same
--rss-tolerance gate as the BENCH_repair.json audit.

Usage:
  check_regression.py --baseline BENCH_repair.json \
                      --current build/BENCH_repair.json \
                      [--journal build/BENCH_telemetry.jsonl] \
                      [--tolerance 0.25] [--rss-tolerance 0.15]

Or via the CMake target, which regenerates the current file first:
  cmake --build build --target check_perf_regression
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"check_regression: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"check_regression: {path} is not valid JSON: {e}")


def check_journal(path, rss_tolerance):
    """Schema/monotonicity audit of a telemetry journal. Returns a list
    of failure strings (empty = pass)."""
    failures = []
    events = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as e:
                    sys.exit(f"check_regression: {path}:{lineno} is not "
                             f"valid JSON: {e}")
                if not isinstance(event, dict) or "event" not in event \
                        or "t_ms" not in event:
                    sys.exit(f"check_regression: {path}:{lineno} lacks the "
                             f"event/t_ms envelope: {line}")
                events.append((lineno, event))
    except OSError as e:
        sys.exit(f"check_regression: cannot read {path}: {e}")

    if not events or events[0][1]["event"] != "journal_open":
        failures.append("journal does not start with a journal_open event")
        return failures

    heartbeats = 0
    last_t_ms = 0
    last_rows = 0
    last_chunk_index = 0
    last_rows_total = 0
    for lineno, event in events:
        t_ms = event["t_ms"]
        if t_ms < last_t_ms:
            failures.append(f"line {lineno}: t_ms ran backwards "
                            f"({t_ms} < {last_t_ms})")
        last_t_ms = t_ms
        kind = event["event"]
        if kind == "heartbeat":
            heartbeats += 1
            for key in ("seq", "rows", "rows_per_s", "rss_peak_bytes"):
                if key not in event:
                    failures.append(f"line {lineno}: heartbeat lacks {key}")
            rows = event.get("rows", 0)
            if rows < last_rows:
                failures.append(f"line {lineno}: heartbeat rows ran "
                                f"backwards ({rows} < {last_rows})")
            last_rows = rows
        elif kind == "chunk":
            for key in ("index", "rows", "rows_total"):
                if key not in event:
                    failures.append(f"line {lineno}: chunk lacks {key}")
            index = event.get("index", 0)
            rows_total = event.get("rows_total", 0)
            # A bench run streams several sections; index restarting at 1
            # marks a new section, which resets the rows_total baseline.
            if index > last_chunk_index and rows_total < last_rows_total:
                failures.append(f"line {lineno}: chunk rows_total ran "
                                f"backwards within a section "
                                f"({rows_total} < {last_rows_total})")
            last_chunk_index = index
            last_rows_total = rows_total
        # Any sample reporting a spill budget must honor it — the same
        # gate the BENCH_repair.json audit applies.
        budget = event.get("budget_bytes", 0)
        peak = event.get("peak_resident_bytes")
        if budget > 0 and peak is not None:
            if peak / budget > 1.0 + rss_tolerance:
                over = (peak / budget - 1.0) * 100.0
                failures.append(f"line {lineno}: peak resident "
                                f"{peak:,.0f} B exceeds budget "
                                f"{budget:,.0f} B ({over:+.1f}%)")
    if heartbeats == 0:
        failures.append("journal contains no heartbeat events — was the "
                        "sampler running?")
    if not failures:
        print(f"   journal  {path}: {len(events)} events, "
              f"{heartbeats} heartbeats, monotone, budgets honored")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_repair.json")
    parser.add_argument("--current", required=True,
                        help="freshly generated BENCH_repair.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional rows/s drop (default 0.25)")
    parser.add_argument("--rss-tolerance", type=float, default=0.15,
                        help="allowed fractional overshoot of "
                             "peak_resident_bytes over budget_bytes "
                             "(default 0.15)")
    parser.add_argument("--wal", action="store_true",
                        help="audit the streaming_wal section: rows/s "
                             "within --wal-tolerance of "
                             "streaming_chunked, and group commit "
                             "(<= 1 fsync per chunk plus the header)")
    parser.add_argument("--wal-tolerance", type=float, default=0.10,
                        help="allowed fractional rows/s drop of durable "
                             "streaming vs no-WAL streaming "
                             "(default 0.10)")
    parser.add_argument("--ruledict", action="store_true",
                        help="audit the ruledict sections: warm mmap "
                             "chase within --ruledict-tolerance of the "
                             "in-RAM index, and the budget run's RSS "
                             "delta below the dictionary file size")
    parser.add_argument("--ruledict-tolerance", type=float, default=0.15,
                        help="allowed fractional rows/s drop of the "
                             "warm dictionary chase vs the in-RAM index "
                             "(default 0.15)")
    parser.add_argument("--daemon", action="store_true",
                        help="audit the daemon_overhead section: "
                             "daemon-served throughput within "
                             "--daemon-tolerance of the direct "
                             "in-process path, and byte-identical "
                             "output")
    parser.add_argument("--daemon-tolerance", type=float, default=0.15,
                        help="allowed fractional rows/s drop of "
                             "daemon-served repairs vs the direct "
                             "in-process path (default 0.15)")
    parser.add_argument("--journal", default=None,
                        help="telemetry journal (JSONL) written by the "
                             "current bench run; checked for schema, "
                             "monotonicity, and the budget gate")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    checked = 0
    for section in sorted(baseline):
        entries = baseline[section]
        if not isinstance(entries, dict):
            continue
        for key in sorted(entries):
            if "rows_per_sec" not in key:
                continue
            base_value = entries[key]
            cur_value = current.get(section, {}).get(key)
            if cur_value is None:
                print(f"      skip  {section}.{key}: not in current run")
                continue
            checked += 1
            ratio = cur_value / base_value if base_value > 0 else 1.0
            delta = (ratio - 1.0) * 100.0
            status = "ok"
            if ratio < 1.0 - args.tolerance:
                status = "REGRESSION"
                failures.append((section, key, base_value, cur_value, delta))
            print(f"{status:>10}  {section}.{key}: "
                  f"baseline {base_value:,.0f} rows/s, "
                  f"current {cur_value:,.0f} rows/s ({delta:+.1f}%)")

    # Memory-budget audit: the current run's spilled workloads must keep
    # their peak resident set within the budget they were asked to honor.
    rss_failures = []
    for section in sorted(current):
        entries = current[section]
        if not isinstance(entries, dict):
            continue
        budget = entries.get("budget_bytes")
        peak = entries.get("peak_resident_bytes")
        if budget is None or peak is None or budget <= 0:
            continue
        ratio = peak / budget
        over = (ratio - 1.0) * 100.0
        status = "ok"
        if ratio > 1.0 + args.rss_tolerance:
            status = "RSS OVER BUDGET"
            rss_failures.append((section, budget, peak, over))
        print(f"{status:>10}  {section}: budget {budget:,.0f} B, "
              f"peak resident {peak:,.0f} B ({over:+.1f}%)")

    # WAL-overhead audit: durable streaming must stay within
    # --wal-tolerance of the no-WAL stream, and each chunk must cost one
    # group fsync (plus the one header sync per run).
    wal_failures = []
    if args.wal:
        wal = current.get("streaming_wal", {})
        chunked = current.get("streaming_chunked", {})
        # wal_overhead is the bench's noise-robust measurement: the best
        # WAL/no-WAL ratio over adjacent interleaved run pairs. Fall
        # back to the section rows/s ratio for older JSON files.
        overhead = wal.get("wal_overhead")
        if overhead is None:
            wal_rps = wal.get("rows_per_sec")
            chunked_rps = wal.get("nowal_rows_per_sec",
                                  chunked.get("rows_per_sec"))
            if wal_rps is not None and chunked_rps:
                overhead = chunked_rps / wal_rps - 1.0
        if overhead is None:
            wal_failures.append("streaming_wal overhead not reported by "
                                "the current run")
        else:
            status = "ok"
            if overhead > args.wal_tolerance:
                status = "WAL OVERHEAD"
                wal_failures.append(
                    f"durable streaming costs {overhead:.1%} of no-WAL "
                    f"streaming throughput "
                    f"(gate {args.wal_tolerance:.0%})")
            print(f"{status:>10}  streaming_wal: journaling overhead "
                  f"{overhead:+.1%} vs no-WAL streaming "
                  f"(gate {args.wal_tolerance:.0%})")
            fsyncs_per_chunk = wal.get("fsyncs_per_chunk")
            if fsyncs_per_chunk is None:
                wal_failures.append("streaming_wal.fsyncs_per_chunk "
                                    "missing from the current run")
            elif fsyncs_per_chunk > 2.0:  # commit + amortized header
                wal_failures.append(
                    f"streaming_wal made {fsyncs_per_chunk:.2f} fsyncs "
                    f"per chunk — group commit is broken")

    # Dictionary audit: the mmap seam must be free once warm, and the
    # corpus-scale budget run must not pull the corpus into RSS.
    ruledict_failures = []
    if args.ruledict:
        warm = current.get("ruledict_warm", {})
        inram = current.get("ruledict_inram", {})
        warm_rps = warm.get("rows_per_sec")
        inram_rps = inram.get("rows_per_sec")
        if warm_rps is None or not inram_rps:
            ruledict_failures.append("ruledict_warm/ruledict_inram "
                                     "rows_per_sec missing from the "
                                     "current run")
        else:
            ratio = warm_rps / inram_rps
            delta = (ratio - 1.0) * 100.0
            status = "ok"
            if ratio < 1.0 - args.ruledict_tolerance:
                status = "DICT SLOW"
                ruledict_failures.append(
                    f"warm dictionary chase runs at {ratio:.2f}x the "
                    f"in-RAM index ({delta:+.1f}%, gate "
                    f"-{args.ruledict_tolerance:.0%})")
            print(f"{status:>10}  ruledict_warm: {warm_rps:,.0f} rows/s "
                  f"vs in-RAM {inram_rps:,.0f} rows/s ({delta:+.1f}%, "
                  f"hot-cache hit rate "
                  f"{warm.get('hot_cache_hit_rate', 0.0):.1%})")
        budget = current.get("ruledict_budget", {})
        dict_bytes = budget.get("dict_bytes")
        rss_delta = budget.get("rss_delta_bytes")
        if dict_bytes is None or rss_delta is None:
            ruledict_failures.append("ruledict_budget dict_bytes/"
                                     "rss_delta_bytes missing from the "
                                     "current run")
        elif budget.get("rss_reset", 0.0) == 0.0:
            # /proc/self/clear_refs was unwritable (non-Linux sandbox):
            # rss_delta_bytes includes every earlier section's peak, so
            # the bound would be meaningless. Report, don't fail.
            print(f"      skip  ruledict_budget: VmHWM reset "
                  f"unavailable, rss_delta_bytes not comparable")
        else:
            ratio = rss_delta / dict_bytes if dict_bytes > 0 else 0.0
            status = "ok"
            if ratio > 1.0:
                status = "DICT RESIDENT"
                ruledict_failures.append(
                    f"budget run added {rss_delta:,.0f} B of RSS "
                    f"against a {dict_bytes:,.0f} B dictionary "
                    f"({ratio:.2f}x) — the corpus is being pulled "
                    f"into memory")
            print(f"{status:>10}  ruledict_budget: rss delta "
                  f"{rss_delta:,.0f} B vs dictionary "
                  f"{dict_bytes:,.0f} B ({ratio:.2f}x), table peak "
                  f"{budget.get('peak_resident_bytes', 0):,.0f} B "
                  f"under budget {budget.get('budget_bytes', 0):,.0f} B")

    # Daemon audit: the serve stack (socket round trip, framing, CSV
    # re-parse) must stay a thin veneer over the direct repair path and
    # must return exactly the bytes the direct path produces.
    daemon_failures = []
    if args.daemon:
        overhead = current.get("daemon_overhead", {})
        daemon_rps = overhead.get("daemon_rows_per_sec")
        direct_rps = overhead.get("direct_rows_per_sec")
        if daemon_rps is None or not direct_rps:
            daemon_failures.append("daemon_overhead daemon/direct "
                                   "rows_per_sec missing from the "
                                   "current run")
        else:
            ratio = daemon_rps / direct_rps
            delta = (ratio - 1.0) * 100.0
            status = "ok"
            if ratio < 1.0 - args.daemon_tolerance:
                status = "DAEMON SLOW"
                daemon_failures.append(
                    f"daemon-served repair runs at {ratio:.2f}x the "
                    f"direct path ({delta:+.1f}%, gate "
                    f"-{args.daemon_tolerance:.0%})")
            print(f"{status:>10}  daemon_overhead: {daemon_rps:,.0f} "
                  f"rows/s vs direct {direct_rps:,.0f} rows/s "
                  f"({delta:+.1f}%)")
        if overhead and overhead.get("byte_identical", 0.0) == 0.0:
            daemon_failures.append("daemon responses diverged from the "
                                   "direct repair output")

    journal_failures = []
    if args.journal is not None:
        journal_failures = check_journal(args.journal, args.rss_tolerance)

    if checked == 0:
        sys.exit("check_regression: no rows_per_sec entries in common — "
                 "wrong baseline/current pairing?")
    if journal_failures:
        print()
        print("=" * 64)
        print(f"TELEMETRY JOURNAL CHECK FAILED: {len(journal_failures)} "
              f"problem(s) in {args.journal}:")
        for failure in journal_failures:
            print(f"  {failure}")
        print("=" * 64)
        sys.exit(1)
    if wal_failures:
        print()
        print("=" * 64)
        print(f"WAL OVERHEAD CHECK FAILED: {len(wal_failures)} problem(s):")
        for failure in wal_failures:
            print(f"  {failure}")
        print("=" * 64)
        sys.exit(1)
    if daemon_failures:
        print()
        print("=" * 64)
        print(f"DAEMON OVERHEAD CHECK FAILED: {len(daemon_failures)} "
              f"problem(s):")
        for failure in daemon_failures:
            print(f"  {failure}")
        print("=" * 64)
        sys.exit(1)
    if ruledict_failures:
        print()
        print("=" * 64)
        print(f"RULE DICTIONARY CHECK FAILED: {len(ruledict_failures)} "
              f"problem(s):")
        for failure in ruledict_failures:
            print(f"  {failure}")
        print("=" * 64)
        sys.exit(1)
    if rss_failures:
        print()
        print("=" * 64)
        print(f"MEMORY BUDGET VIOLATION: {len(rss_failures)} spilled "
              f"workload(s) exceeded their resident budget by more than "
              f"{args.rss_tolerance:.0%}:")
        for section, budget, peak, over in rss_failures:
            print(f"  {section}: budget {budget:,.0f} B, peak "
                  f"{peak:,.0f} B ({over:+.1f}%)")
        print("=" * 64)
        sys.exit(1)
    if failures:
        print()
        print("=" * 64)
        print(f"PERF REGRESSION: {len(failures)} of {checked} throughput "
              f"entries dropped more than {args.tolerance:.0%}:")
        for section, key, base_value, cur_value, delta in failures:
            print(f"  {section}.{key}: {base_value:,.0f} -> "
                  f"{cur_value:,.0f} rows/s ({delta:+.1f}%)")
        print("If the slowdown is intended, regenerate the baseline with")
        print("  FIXREP_BENCH_JSON=BENCH_repair.json "
              "build/bench/bench_fig13_repair")
        print("=" * 64)
        sys.exit(1)
    journal_note = "" if args.journal is None else "; telemetry journal ok"
    wal_note = "" if not args.wal else (
        f"; WAL overhead within {args.wal_tolerance:.0%}")
    print(f"perf check passed: {checked} throughput entries within "
          f"{args.tolerance:.0%} of baseline; memory budgets within "
          f"{args.rss_tolerance:.0%}{wal_note}{journal_note}")


if __name__ == "__main__":
    main()
