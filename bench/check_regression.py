#!/usr/bin/env python3
"""Guard against repair-throughput regressions.

Compares every *rows_per_sec* entry of a freshly generated
BENCH_repair.json against the committed baseline and exits non-zero when
any entry present in both files has dropped by more than --tolerance
(default 10%). Entries present on only one side are reported and skipped
(bench_fig13_repair and bench_scaling emit different section sets into
the same file), but finding *no* comparable entry at all is an error —
that means the check compared the wrong files.

Usage:
  check_regression.py --baseline BENCH_repair.json \
                      --current build/BENCH_repair.json [--tolerance 0.10]

Or via the CMake target, which regenerates the current file first:
  cmake --build build --target check_perf_regression
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"check_regression: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"check_regression: {path} is not valid JSON: {e}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_repair.json")
    parser.add_argument("--current", required=True,
                        help="freshly generated BENCH_repair.json")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional rows/s drop (default 0.10)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    checked = 0
    for section in sorted(baseline):
        entries = baseline[section]
        if not isinstance(entries, dict):
            continue
        for key in sorted(entries):
            if "rows_per_sec" not in key:
                continue
            base_value = entries[key]
            cur_value = current.get(section, {}).get(key)
            if cur_value is None:
                print(f"      skip  {section}.{key}: not in current run")
                continue
            checked += 1
            ratio = cur_value / base_value if base_value > 0 else 1.0
            delta = (ratio - 1.0) * 100.0
            status = "ok"
            if ratio < 1.0 - args.tolerance:
                status = "REGRESSION"
                failures.append((section, key, base_value, cur_value, delta))
            print(f"{status:>10}  {section}.{key}: "
                  f"baseline {base_value:,.0f} rows/s, "
                  f"current {cur_value:,.0f} rows/s ({delta:+.1f}%)")

    if checked == 0:
        sys.exit("check_regression: no rows_per_sec entries in common — "
                 "wrong baseline/current pairing?")
    if failures:
        print()
        print("=" * 64)
        print(f"PERF REGRESSION: {len(failures)} of {checked} throughput "
              f"entries dropped more than {args.tolerance:.0%}:")
        for section, key, base_value, cur_value, delta in failures:
            print(f"  {section}.{key}: {base_value:,.0f} -> "
                  f"{cur_value:,.0f} rows/s ({delta:+.1f}%)")
        print("If the slowdown is intended, regenerate the baseline with")
        print("  FIXREP_BENCH_JSON=BENCH_repair.json "
              "build/bench/bench_fig13_repair")
        print("=" * 64)
        sys.exit(1)
    print(f"perf check passed: {checked} throughput entries within "
          f"{args.tolerance:.0%} of baseline")


if __name__ == "__main__":
    main()
