#!/usr/bin/env python3
"""Guard against repair-throughput regressions.

Compares every *rows_per_sec* entry of a freshly generated
BENCH_repair.json against the committed baseline and exits non-zero when
any entry present in both files has dropped by more than --tolerance
(default 25%: wall-clock sections on a shared machine see double-digit
scheduler noise between runs, while the regressions this guards against
-- losing memoization, pooling, or block reuse -- cost 2-10x). Entries present on only one side are reported and skipped
(bench_fig13_repair and bench_scaling emit different section sets into
the same file), but finding *no* comparable entry at all is an error —
that means the check compared the wrong files.

Additionally audits the out-of-core sections of the *current* run: any
section reporting both budget_bytes and peak_resident_bytes (the
streaming_spill workload) fails the check when the peak resident set
exceeds the requested budget by more than --rss-tolerance (default 15%)
— the spill machinery must actually honor its memory budget, not just
stay fast.

Usage:
  check_regression.py --baseline BENCH_repair.json \
                      --current build/BENCH_repair.json \
                      [--tolerance 0.25] [--rss-tolerance 0.15]

Or via the CMake target, which regenerates the current file first:
  cmake --build build --target check_perf_regression
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"check_regression: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"check_regression: {path} is not valid JSON: {e}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_repair.json")
    parser.add_argument("--current", required=True,
                        help="freshly generated BENCH_repair.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional rows/s drop (default 0.25)")
    parser.add_argument("--rss-tolerance", type=float, default=0.15,
                        help="allowed fractional overshoot of "
                             "peak_resident_bytes over budget_bytes "
                             "(default 0.15)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    checked = 0
    for section in sorted(baseline):
        entries = baseline[section]
        if not isinstance(entries, dict):
            continue
        for key in sorted(entries):
            if "rows_per_sec" not in key:
                continue
            base_value = entries[key]
            cur_value = current.get(section, {}).get(key)
            if cur_value is None:
                print(f"      skip  {section}.{key}: not in current run")
                continue
            checked += 1
            ratio = cur_value / base_value if base_value > 0 else 1.0
            delta = (ratio - 1.0) * 100.0
            status = "ok"
            if ratio < 1.0 - args.tolerance:
                status = "REGRESSION"
                failures.append((section, key, base_value, cur_value, delta))
            print(f"{status:>10}  {section}.{key}: "
                  f"baseline {base_value:,.0f} rows/s, "
                  f"current {cur_value:,.0f} rows/s ({delta:+.1f}%)")

    # Memory-budget audit: the current run's spilled workloads must keep
    # their peak resident set within the budget they were asked to honor.
    rss_failures = []
    for section in sorted(current):
        entries = current[section]
        if not isinstance(entries, dict):
            continue
        budget = entries.get("budget_bytes")
        peak = entries.get("peak_resident_bytes")
        if budget is None or peak is None or budget <= 0:
            continue
        ratio = peak / budget
        over = (ratio - 1.0) * 100.0
        status = "ok"
        if ratio > 1.0 + args.rss_tolerance:
            status = "RSS OVER BUDGET"
            rss_failures.append((section, budget, peak, over))
        print(f"{status:>10}  {section}: budget {budget:,.0f} B, "
              f"peak resident {peak:,.0f} B ({over:+.1f}%)")

    if checked == 0:
        sys.exit("check_regression: no rows_per_sec entries in common — "
                 "wrong baseline/current pairing?")
    if rss_failures:
        print()
        print("=" * 64)
        print(f"MEMORY BUDGET VIOLATION: {len(rss_failures)} spilled "
              f"workload(s) exceeded their resident budget by more than "
              f"{args.rss_tolerance:.0%}:")
        for section, budget, peak, over in rss_failures:
            print(f"  {section}: budget {budget:,.0f} B, peak "
                  f"{peak:,.0f} B ({over:+.1f}%)")
        print("=" * 64)
        sys.exit(1)
    if failures:
        print()
        print("=" * 64)
        print(f"PERF REGRESSION: {len(failures)} of {checked} throughput "
              f"entries dropped more than {args.tolerance:.0%}:")
        for section, key, base_value, cur_value, delta in failures:
            print(f"  {section}.{key}: {base_value:,.0f} -> "
                  f"{cur_value:,.0f} rows/s ({delta:+.1f}%)")
        print("If the slowdown is intended, regenerate the baseline with")
        print("  FIXREP_BENCH_JSON=BENCH_repair.json "
              "build/bench/bench_fig13_repair")
        print("=" * 64)
        sys.exit(1)
    print(f"perf check passed: {checked} throughput entries within "
          f"{args.tolerance:.0%} of baseline; memory budgets within "
          f"{args.rss_tolerance:.0%}")


if __name__ == "__main__":
    main()
