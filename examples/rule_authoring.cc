// Rule-authoring workflow (Section 5's three-step loop):
//
//   parse a rule file -> check consistency -> diagnose conflicts ->
//   resolve (pruning, mimicking the Example 10 expert) -> remove
//   redundant rules via implication -> serialize the curated set.
//
// Run: ./rule_authoring [rules.txt]
// Without an argument it authors an in-memory file containing phi_1'
// (the Example 8 conflict) plus a redundant rule, so the full workflow
// is exercised out of the box.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "datagen/travel.h"
#include "rules/consistency.h"
#include "rules/implication.h"
#include "rules/resolution.h"
#include "rules/rule_io.h"

namespace {

constexpr const char kDefaultRules[] = R"(# Travel rules, with two flaws:
# phi_1' carries Tokyo as a negative pattern (conflicts with phi_3,
# Example 8), and the last rule is implied by phi_2.

RULE
  IF country = China
  WRONG capital IN Shanghai | Hongkong | Tokyo
  THEN capital = Beijing
END

RULE
  IF country = Canada
  WRONG capital IN Toronto
  THEN capital = Ottawa
END

RULE
  IF capital = Tokyo
  IF city = Tokyo
  IF conf = ICDE
  WRONG country IN China
  THEN country = Japan
END

RULE
  IF capital = Beijing
  IF conf = ICDE
  WRONG city IN Hongkong
  THEN city = Shanghai
END

# Redundant: a weaker copy of the Canada rule.
RULE
  IF country = Canada
  WRONG capital IN Toronto
  THEN capital = Ottawa
END
)";

}  // namespace

int main(int argc, char** argv) {
  fixrep::TravelExample example;  // supplies schema and value pool

  fixrep::RuleSet rules(example.schema, example.pool);
  if (argc > 1) {
    std::cout << "Parsing " << argv[1] << "\n";
    rules = fixrep::ParseRulesFile(argv[1], example.schema, example.pool);
  } else {
    std::cout << "Parsing built-in demo rule file\n";
    rules = fixrep::ParseRulesFromString(kDefaultRules, example.schema,
                                         example.pool);
  }
  std::cout << "Parsed " << rules.size() << " rules\n";

  // Step 1: consistency check, with diagnosis.
  std::vector<fixrep::Conflict> conflicts;
  if (!IsConsistentStrict(rules, &conflicts, /*find_all=*/true)) {
    std::cout << "\nStep 1: the set is INCONSISTENT ("
              << conflicts.size() << " conflicting pair(s)):\n";
    for (const auto& conflict : conflicts) {
      std::cout << conflict.Describe(rules) << "\n";
    }
    // Step 2: resolve by pruning negative patterns (the paper's expert
    // move: remove values, never add them).
    const auto report = fixrep::ResolveByPruning(&rules);
    std::cout << "\nStep 2: resolved by pruning ("
              << report.patterns_removed << " negative pattern(s) removed, "
              << report.dropped_rules.size() << " rule(s) dropped, "
              << report.rounds << " round(s))\n";
  } else {
    std::cout << "\nStep 1: the set is consistent\n";
  }
  std::cout << "Step 3: consistent set of " << rules.size() << " rules\n";

  // Implication pass: drop rules implied by the rest.
  std::vector<size_t> redundant;
  for (size_t i = rules.size(); i-- > 0;) {
    fixrep::RuleSet rest(example.schema, example.pool);
    for (size_t j = 0; j < rules.size(); ++j) {
      if (j != i) rest.Add(rules.rule(j));
    }
    const auto result = Implies(rest, rules.rule(i));
    if (result.implied) {
      std::cout << "  rule #" << i << " is implied ("
                << (result.exhaustive ? "exhaustive" : "sampled")
                << " check) and will be dropped\n";
      redundant.push_back(i);
      rules = rest;
    }
  }
  std::cout << "After implication pruning: " << rules.size() << " rules\n\n";

  std::cout << "Curated rule set:\n" << SerializeRules(rules);
  return 0;
}
