// fixrep_cli — the end-to-end command-line front door to the library.
//
//   fixrep_cli gen-data  --dataset hosp|uis|travel --rows N --seed S
//                        --out clean.csv [--dirty dirty.csv]
//                        [--noise 0.1] [--typos 0.5] [--fds-out fds.txt]
//   fixrep_cli gen-rules --clean clean.csv --dirty dirty.csv
//                        --fds fds.txt --out rules.txt [--max N]
//   fixrep_cli gen-rules --scale N --attrs a,b,c|--clean clean.csv
//                        --out rules.txt [--seed S]
//                        emits N synthetic CFD-derived rules (rule-unique
//                        constants, consistent by construction) for
//                        dictionary-scale benches and tests
//   fixrep_cli rules compile --rules rules.txt --attrs a,b,c|--data d.csv
//                        --out dict.frd [--scale N --seed S]
//                        compiles the rule set into the mmap-able
//                        dictionary artifact (rules/rule_dict.h);
//                        --scale appends N synthetic rules before
//                        compiling, so a million-rule corpus needs no
//                        intermediate text file
//   fixrep_cli rules inspect --dict dict.frd
//                        prints the validated header (version,
//                        fingerprint, rule/string counts) and the
//                        per-section offset/size table
//   fixrep_cli discover  --dirty dirty.csv --fds fds.txt --out rules.txt
//                        [--max N] [--confidence 0.8]
//   fixrep_cli check     --rules rules.txt --data any.csv [--strict]
//                        [--resolve pruned_rules.txt]
//   fixrep_cli repair    --rules rules.txt --in dirty.csv --out fixed.csv
//                        [--engine lrepair|crepair] [--threads N]
//                        [--no-memo] [--log] [--stream] [--chunk-rows N]
//                        [--memory-budget SIZE] [--prune]
//                        [--on-error=abort|skip|quarantine]
//                        [--quarantine-out q.csv] [--max-chase-steps N]
//                        [--wal wal.bin] [--resume]
//                        [--rules-dict dict.frd] [--shards N]
//                        --rules-dict repairs against a compiled
//                        dictionary (mmap, demand-paged) instead of
//                        --rules; output is byte-identical. --shards
//                        routes tuples to N workers by content hash
//                        (repair/sharded.h) instead of claiming row
//                        ranges; output is byte-identical either way.
//                        --threads N uses the pooled parallel engine
//                        (N=0 picks the hardware width); repair memoizes
//                        byte-identical tuples by default, --no-memo
//                        disables the cache (output is bit-identical
//                        either way)
//                        --on-error=abort (default) fails fast on the
//                        first malformed row/rule; skip drops bad
//                        records; quarantine drops them and writes
//                        source,line,code,message,raw_text records to
//                        --quarantine-out (docs/robustness.md).
//                        --max-chase-steps bounds the per-tuple chase in
//                        skip/quarantine mode; a tuple exceeding it is
//                        quarantined with its original values intact.
//                        --stream repairs the input in fixed-size chunks
//                        (--chunk-rows, default 65536) with peak memory
//                        proportional to one chunk; the output CSV and
//                        quarantine file are byte-identical to the
//                        whole-table run (lrepair engine only, no --log).
//                        --memory-budget=64MB (K/M/G suffixes) spills
//                        chunk cell blocks past the budget to a
//                        temp-backed mmap file; without --chunk-rows the
//                        whole input becomes one spilling chunk, so the
//                        budget alone bounds resident cell memory.
//                        --prune interns only rule-mentioned columns and
//                        passes the rest through verbatim (--stream
//                        only; output is byte-identical).
//                        --wal journals every committed chunk to a
//                        write-ahead log (--stream only), fsynced before
//                        the chunk's rows are emitted; after a crash,
//                        rerunning with --resume fast-forwards past the
//                        durable chunks and produces output
//                        byte-identical to an uninterrupted run
//                        (docs/durability.md). Outputs land via
//                        temp-file + rename, so a crash never leaves a
//                        partial CSV under --out.
//   fixrep_cli audit     --wal wal.bin [--rules rules.txt]
//                        prints every journaled cell repair and the run
//                        summary straight from the log — no input CSV
//                        needed; --rules additionally checks the log was
//                        written under that rule set (fingerprint).
//   fixrep_cli rollback  --wal wal.bin --rules rules.txt --rule K
//                        --in fixed.csv --out rolled.csv
//                        undoes every cell write rule #K made, verifying
//                        each cell still holds the journaled value;
//                        re-repairing the result restores fixed.csv.
//   fixrep_cli eval      --truth truth.csv --dirty dirty.csv
//                        --repaired fixed.csv
//   fixrep_cli serve     --socket /run/fixrep.sock|--port N
//                        --ruleset NAME=PATH[@a,b,c] [--ruleset ...]
//                        [--max-pending N] [--port-file p.txt]
//                        long-running multi-tenant repair daemon
//                        (docs/serving.md): every --ruleset names a rule
//                        set compiled exactly once — a text rules file
//                        with its schema attrs, or a compiled .frd
//                        dictionary (the file's magic decides) — and
//                        served to concurrent clients over a
//                        length-prefixed binary protocol. --port 0
//                        binds an ephemeral loopback port (see
//                        --port-file); --max-pending bounds admitted
//                        in-flight requests — past it the daemon answers
//                        UNAVAILABLE immediately instead of queueing.
//                        SIGTERM/SIGINT drain in-flight requests to
//                        completion before exit.
//   fixrep_cli submit    --socket S|--port N --tenant NAME --in d.csv
//                        --out fixed.csv [--quarantine-out q.csv]
//                        [--engine ...] [--threads N] [--shards N]
//                        [--no-memo] [--memo-capacity N]
//                        [--on-error=...] [--max-chase-steps N]
//                        repairs one CSV batch through a running
//                        daemon; the repair knobs travel as config
//                        headers (repair/config.h grammar) and the
//                        output is byte-identical to a direct `repair`
//                        run against the tenant's rules
//   fixrep_cli ping      --socket S|--port N
//                        lists the daemon's rule sets (rules,
//                        generation, backend) and request counters
//   fixrep_cli reload    --socket S|--port N --ruleset NAME=SPEC
//                        hot-swaps one rule set; requests in flight
//                        finish on the old rules, later ones see the
//                        new generation — nothing is dropped
//
// Global flags (any command, before or after it; --flag=value and
// --flag value are both accepted):
//   --log-level=debug|info|warn|error|off   logger threshold
//                                           (default: $FIXREP_LOG_LEVEL)
//   --metrics-out=metrics.json   dump the metrics registry and the span
//                                timeline as JSON on exit
//   --telemetry-out=run.jsonl    write the live JSONL event journal
//                                (heartbeats, trace spans, per-chunk
//                                stats — docs/observability.md)
//   --heartbeat-ms=1000          heartbeat sampler interval; the sampler
//                                starts whenever --telemetry-out,
//                                --progress, or this flag is given
//   --metrics-socket=PATH        serve GET /metrics (Prometheus text
//                                format) on a unix-domain socket
//   --metrics-port=9464          same, on loopback TCP (0 = ephemeral;
//                                the bound port is printed to stderr)
//   --port-file=PATH             atomically write the bound TCP port to
//                                PATH: the daemon's port under `serve`,
//                                the /metrics port otherwise — pairs
//                                with --port=0 / --metrics-port=0 so
//                                scripts need not scrape stderr
//   --progress                   live one-line progress display on
//                                stderr (chunk, rows/s, resident vs
//                                budget) for streaming runs
//   --no-simd                    pin the scalar probe kernel — disables
//                                the SIMD batched evidence-matching path
//                                (equivalent to FIXREP_SIMD=off; output
//                                is byte-identical either way, see
//                                docs/performance.md)
//
// CSV files are self-describing (header row = schema); the rule and FD
// files use the formats of rules/rule_io.h and deps/fd.h. All inputs of
// one invocation share a value pool, so cross-file cell comparisons are
// exact.

#include <sys/stat.h>

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/atomic_file.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/metrics_server.h"
#include "common/quarantine.h"
#include "common/simd.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "common/trace.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/travel.h"
#include "datagen/uis.h"
#include "deps/fd.h"
#include "eval/metrics.h"
#include "eval/text_table.h"
#include "relation/csv.h"
#include "repair/config.h"
#include "repair/provenance.h"
#include "repair/recovery.h"
#include "repair/session.h"
#include "rulegen/discovery.h"
#include "rulegen/rulegen.h"
#include "rulegen/scale.h"
#include "rules/consistency.h"
#include "rules/resolution.h"
#include "rules/rule_dict.h"
#include "rules/rule_io.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/registry.h"

namespace fixrep::cli {
namespace {

// Minimal flag parser: --flag value, --flag=value, and bare --flag
// booleans. Flags may appear before or after the command; the command is
// the first non-flag token (a valueless flag directly before the command
// must use --flag= syntax to avoid swallowing it).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        if (command_.empty()) {
          command_ = key;
          continue;
        }
        // Command groups take one subcommand ("rules compile").
        if (subcommand_.empty() && command_ == "rules") {
          subcommand_ = key;
          continue;
        }
        std::cerr << "unexpected argument '" << key << "'\n";
        std::exit(2);
      }
      key = key.substr(2);
      const size_t eq = key.find('=');
      if (eq != std::string::npos) {
        Add(key.substr(0, eq), key.substr(eq + 1));
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        Add(key, argv[++i]);
      } else {
        Add(key, "");  // boolean flag
      }
    }
  }

  const std::string& command() const { return command_; }
  const std::string& subcommand() const { return subcommand_; }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string Require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) {
      std::cerr << "missing required --" << key << "\n";
      std::exit(2);
    }
    return it->second;
  }

  size_t GetSizeT(const std::string& key, size_t fallback) const {
    return Has(key) ? std::strtoull(Get(key).c_str(), nullptr, 10)
                    : fallback;
  }

  double GetDouble(const std::string& key, double fallback) const {
    return Has(key) ? std::strtod(Get(key).c_str(), nullptr) : fallback;
  }

  // Every value given for a repeated flag (serve takes one --ruleset per
  // hosted rule set), in command-line order. Get/Require keep their
  // last-one-wins semantics for the scalar flags.
  std::vector<std::string> GetAll(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [flag, value] : ordered_) {
      if (flag == key) out.push_back(value);
    }
    return out;
  }

 private:
  void Add(std::string key, std::string value) {
    ordered_.emplace_back(key, value);
    values_[std::move(key)] = std::move(value);
  }

  std::string command_;
  std::string subcommand_;
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> ordered_;
};

// Applies one --flag through the shared key/value grammar of
// repair/config.h; a parse failure is a usage error.
void ApplyConfigFlag(const Args& args, const std::string& key,
                     RepairConfig* config) {
  std::string value = args.Get(key);
  // Bare --threads means "the pool's full width", as it always has.
  if (key == "threads" && value.empty()) value = "0";
  const Status status = ParseRepairConfig(key, value, config);
  if (!status.ok()) {
    std::cerr << "bad --" << key << ": " << status << "\n";
    std::exit(2);
  }
}

// Builds the RepairConfig shared by all repair flows from the command
// line. Every knob funnels through ParseRepairConfig — the same grammar
// the daemon applies to wire-request config headers — so a flag behaves
// identically on both surfaces. The per-flow callers fill in quarantine
// sinks and chunking.
RepairConfig ConfigFromArgs(const Args& args, OnErrorPolicy policy) {
  RepairConfig config;
  for (const char* key : {"engine", "threads", "shards", "rules-dict",
                          "no-memo", "memo-capacity", "max-chase-steps"}) {
    if (args.Has(key)) ApplyConfigFlag(args, key, &config);
  }
  config.on_error = policy;
  return config;
}

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> out;
  std::string token;
  for (const char c : text) {
    if (c == ',') {
      out.push_back(token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  out.push_back(token);
  return out;
}

// Schema for schema-less commands (gen-rules --scale, rules compile):
// --attrs a,b,c names it directly; --data file.csv borrows a CSV header.
std::shared_ptr<const Schema> SchemaFromArgs(
    const Args& args, const std::string& csv_flag,
    const std::shared_ptr<ValuePool>& pool) {
  if (args.Has("attrs")) {
    return std::make_shared<const Schema>("data",
                                          SplitCommaList(args.Require("attrs")));
  }
  if (args.Has(csv_flag)) {
    const Table data = ReadCsvFile(args.Require(csv_flag), "data", pool);
    return data.schema_ptr();
  }
  std::cerr << "need --attrs a,b,c or --" << csv_flag
            << " file.csv for the schema\n";
  std::exit(2);
}

int Usage() {
  std::cerr << "usage: fixrep_cli "
               "gen-data|gen-rules|rules compile|rules inspect|discover|"
               "check|repair|serve|submit|ping|reload|audit|rollback|eval"
               " [--flags]\n"
               "see the header of examples/fixrep_cli.cc for details\n";
  return 2;
}

int GenData(const Args& args) {
  FIXREP_TRACE_SPAN("cli.gen_data");
  const std::string dataset = args.Require("dataset");
  const uint64_t seed = args.GetSizeT("seed", 1);
  GeneratedData data = [&]() -> GeneratedData {
    if (dataset == "hosp") {
      HospOptions options;
      options.rows = args.GetSizeT("rows", 115000);
      options.num_hospitals =
          std::max<size_t>(options.rows / 30, 50);
      options.seed = seed;
      return GenerateHosp(options);
    }
    if (dataset == "uis") {
      UisOptions options;
      options.rows = args.GetSizeT("rows", 15000);
      options.seed = seed;
      return GenerateUis(options);
    }
    if (dataset == "travel") {
      TravelExample example;
      GeneratedData data(example.pool, example.schema);
      data.clean = example.clean;
      data.fds = {ParseFd(*example.schema, "country -> capital")};
      return data;
    }
    std::cerr << "unknown --dataset '" << dataset << "'\n";
    std::exit(2);
  }();

  WriteCsvFile(data.clean, args.Require("out"));
  std::cout << "wrote " << data.clean.num_rows() << " clean rows to "
            << args.Get("out") << "\n";
  if (args.Has("fds-out")) {
    std::ofstream fds(args.Get("fds-out"));
    for (const auto& fd : data.fds) {
      fds << FormatFd(*data.schema, fd) << "\n";
    }
    std::cout << "wrote " << data.fds.size() << " FDs to "
              << args.Get("fds-out") << "\n";
  }
  if (args.Has("dirty")) {
    Table dirty = data.clean;
    NoiseOptions noise;
    noise.noise_rate = args.GetDouble("noise", 0.10);
    noise.typo_share = args.GetDouble("typos", 0.5);
    noise.seed = seed ^ 0xd1e7;
    const NoiseReport report = InjectNoise(
        &dirty, ConstraintAttributes(*data.schema, data.fds), noise);
    WriteCsvFile(dirty, args.Get("dirty"));
    std::cout << "wrote dirty copy with " << report.rows_corrupted
              << " corrupted rows to " << args.Get("dirty") << "\n";
  }
  return 0;
}

int GenRules(const Args& args) {
  FIXREP_TRACE_SPAN("cli.gen_rules");
  if (args.Has("scale")) {
    auto pool = std::make_shared<ValuePool>();
    const std::shared_ptr<const Schema> schema =
        SchemaFromArgs(args, "clean", pool);
    ScaleRuleGenOptions options;
    options.scale = args.GetSizeT("scale", options.scale);
    options.seed = args.GetSizeT("seed", options.seed);
    Timer timer;
    const RuleSet rules = GenerateScaleRules(schema, pool, options);
    WriteRulesFile(rules, args.Require("out"));
    std::cout << "wrote " << rules.size() << " synthetic rules (seed "
              << options.seed << ") to " << args.Get("out") << " in "
              << FormatDouble(timer.ElapsedMillis(), 1) << " ms\n";
    return 0;
  }
  auto pool = std::make_shared<ValuePool>();
  const Table clean = ReadCsvFile(args.Require("clean"), "data", pool);
  const Table dirty = ReadCsvFile(args.Require("dirty"), "data", pool);
  const auto fds = ParseFdListFile(clean.schema(), args.Require("fds"));
  RuleGenOptions options;
  options.max_rules = args.GetSizeT("max", 1000);
  const RuleSet rules = GenerateRules(clean, dirty, fds, options);
  WriteRulesFile(rules, args.Require("out"));
  std::cout << "wrote " << rules.size() << " rules to " << args.Get("out")
            << "\n";
  return 0;
}

int Discover(const Args& args) {
  auto pool = std::make_shared<ValuePool>();
  const Table dirty = ReadCsvFile(args.Require("dirty"), "data", pool);
  const auto fds = ParseFdListFile(dirty.schema(), args.Require("fds"));
  DiscoveryOptions options;
  options.max_rules = args.GetSizeT("max", 1000);
  options.min_confidence = args.GetDouble("confidence", 0.8);
  const RuleSet rules = DiscoverRules(dirty, fds, options);
  WriteRulesFile(rules, args.Require("out"));
  std::cout << "discovered " << rules.size() << " rules into "
            << args.Get("out") << "\n";
  return 0;
}

int Check(const Args& args) {
  auto pool = std::make_shared<ValuePool>();
  const Table data = ReadCsvFile(args.Require("data"), "data", pool);
  RuleSet rules =
      ParseRulesFile(args.Require("rules"), data.schema_ptr(), pool);
  std::vector<Conflict> conflicts;
  const bool strict = args.Has("strict");
  const bool consistent =
      strict ? IsConsistentStrict(rules, &conflicts, /*find_all=*/true)
             : IsConsistentChar(rules, &conflicts, /*find_all=*/true);
  std::cout << rules.size() << " rules: "
            << (consistent ? "consistent" : "INCONSISTENT")
            << (strict ? " (strict)" : "") << "\n";
  for (const auto& conflict : conflicts) {
    std::cout << conflict.Describe(rules) << "\n";
  }
  if (!consistent && args.Has("resolve")) {
    const auto report = ResolveByPruning(&rules);
    std::cout << "resolved: " << report.patterns_removed
              << " negative patterns removed, "
              << report.dropped_rules.size() << " rules dropped\n";
    WriteRulesFile(rules, args.Get("resolve"));
    std::cout << "wrote " << rules.size() << " consistent rules to "
              << args.Get("resolve") << "\n";
  }
  return consistent ? 0 : 1;
}

// Compiles a rule set (parsed from text and/or synthesized at --scale)
// into the mmap-able dictionary artifact, then reopens it to confirm the
// written file validates.
int RulesCompile(const Args& args) {
  FIXREP_TRACE_SPAN("cli.rules_compile");
  auto pool = std::make_shared<ValuePool>();
  const std::shared_ptr<const Schema> schema =
      SchemaFromArgs(args, "data", pool);
  RuleSet rules(schema, pool);
  if (args.Has("rules")) {
    rules = ParseRulesFile(args.Require("rules"), schema, pool);
  }
  if (args.Has("scale")) {
    ScaleRuleGenOptions options;
    options.scale = args.GetSizeT("scale", options.scale);
    options.seed = args.GetSizeT("seed", options.seed);
    AppendScaleRules(&rules, options);
  }
  if (rules.empty()) {
    std::cerr << "nothing to compile: pass --rules and/or --scale\n";
    return 2;
  }
  const std::string out_path = args.Require("out");
  Timer timer;
  const Status compiled = CompileRuleDict(rules, out_path);
  if (!compiled.ok()) {
    std::cerr << "compile failed: " << compiled << "\n";
    return 1;
  }
  StatusOr<std::unique_ptr<RuleDict>> dict_or = RuleDict::Open(out_path);
  if (!dict_or.ok()) {
    std::cerr << "written dictionary fails validation: " << dict_or.status()
              << "\n";
    return 1;
  }
  const RuleDict& dict = *dict_or.value();
  std::cout << "compiled " << dict.num_rules() << " rules ("
            << dict.header().num_strings << " strings, "
            << dict.file_bytes() << " bytes, fingerprint "
            << std::hex << dict.fingerprint() << std::dec << ") in "
            << FormatDouble(timer.ElapsedMillis(), 1) << " ms -> "
            << out_path << "\n";
  return 0;
}

// Prints the validated header and the per-section layout of a compiled
// dictionary. Touches only the header pages — O(1) in corpus size.
int RulesInspect(const Args& args) {
  FIXREP_TRACE_SPAN("cli.rules_inspect");
  StatusOr<std::unique_ptr<RuleDict>> dict_or =
      RuleDict::Open(args.Require("dict"));
  if (!dict_or.ok()) {
    std::cerr << "error opening --dict: " << dict_or.status() << "\n";
    return 1;
  }
  const RuleDict& dict = *dict_or.value();
  const RuleDictHeader& header = dict.header();
  std::cout << dict.path() << ": rule dictionary v" << header.version
            << ", " << dict.file_bytes() << " bytes\n";
  std::cout << "fingerprint " << std::hex << header.fingerprint << std::dec
            << "\n";
  std::cout << header.num_rules << " rules over " << header.arity
            << " attributes (";
  for (size_t a = 0; a < dict.attribute_names().size(); ++a) {
    if (a > 0) std::cout << ", ";
    std::cout << dict.attribute_names()[a];
  }
  std::cout << ")\n";
  std::cout << header.num_keys << " probe keys, " << header.num_postings
            << " postings, " << header.num_strings << " interned strings, "
            << header.num_ev_pairs << " evidence pairs, "
            << header.num_neg_values << " negative patterns\n";
  TextTable table({"section", "offset", "bytes"});
  for (size_t s = 0; s < kNumDictSections; ++s) {
    table.AddRow({DictSectionName(static_cast<DictSection>(s)),
                  std::to_string(header.section_offset[s]),
                  std::to_string(header.section_bytes[s])});
  }
  table.Print(std::cout);
  return 0;
}

// Writes the grouped dead-letter file (csv records, then rule blocks,
// then repaired tuples) shared by the lenient and streaming pipelines.
int WriteQuarantineFile(const std::string& path,
                        const VectorQuarantineSink& row_sink,
                        const VectorQuarantineSink& rule_sink,
                        const VectorQuarantineSink& tuple_sink) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot open --quarantine-out path '" << path << "'\n";
    return 1;
  }
  WriteQuarantineHeader(out);
  for (const auto& d : row_sink.diagnostics()) {
    WriteQuarantineRecord(out, "csv", d);
  }
  for (const auto& d : rule_sink.diagnostics()) {
    WriteQuarantineRecord(out, "rules", d);
  }
  for (const auto& d : tuple_sink.diagnostics()) {
    WriteQuarantineRecord(out, "repair", d);
  }
  out.flush();
  if (!out.good()) {
    std::cerr << "write failed for --quarantine-out path '" << path
              << "'\n";
    return 1;
  }
  return 0;
}

// Chunked streaming repair (repair/streaming.h): the input CSV never
// lives in memory whole. Handles every --on-error policy; the emitted
// CSV and quarantine file are byte-identical to the whole-table run.
int RepairStream(const Args& args, OnErrorPolicy policy) {
  if (args.Has("log")) {
    std::cerr << "--log (provenance) is incompatible with --stream\n";
    return 2;
  }
  if (args.Get("engine", "lrepair") != "lrepair") {
    std::cerr << "--stream supports --engine=lrepair only\n";
    return 2;
  }
  auto pool = std::make_shared<ValuePool>();
  const bool quarantining = policy == OnErrorPolicy::kQuarantine;
  VectorQuarantineSink row_sink;
  VectorQuarantineSink rule_sink;
  VectorQuarantineSink tuple_sink;

  auto load = std::make_unique<TraceSpan>("cli.load");
  std::ifstream in(args.Require("in"));
  if (!in.good()) {
    std::cerr << "error reading --in: cannot open " << args.Get("in")
              << "\n";
    return 1;
  }
  struct stat input_stat;
  if (stat(args.Get("in").c_str(), &input_stat) == 0) {
    // Lets --progress and heartbeats report percent-done: the streaming
    // driver publishes input_bytes_read as it goes.
    MetricsRegistry::Global()
        .GetGauge("fixrep.progress.input_bytes_total")
        ->Set(static_cast<int64_t>(input_stat.st_size));
  }
  CsvReadOptions csv_options;
  csv_options.on_error = policy;
  csv_options.quarantine = quarantining ? &row_sink : nullptr;
  StatusOr<CsvChunkReader> reader_or =
      CsvChunkReader::Open(in, "data", pool, csv_options);
  if (!reader_or.ok()) {
    std::cerr << "error reading --in: " << reader_or.status() << "\n";
    return 1;
  }
  CsvChunkReader reader = std::move(reader_or).value();
  std::optional<RuleSet> rules;
  if (!args.Has("rules-dict")) {
    RuleParseOptions rule_options;
    rule_options.on_error = policy;
    rule_options.quarantine = quarantining ? &rule_sink : nullptr;
    StatusOr<RuleSet> rules_or = ParseRulesFileLenient(
        args.Require("rules"), reader.schema(), pool, rule_options);
    if (!rules_or.ok()) {
      std::cerr << "error reading --rules: " << rules_or.status() << "\n";
      return 1;
    }
    rules.emplace(std::move(rules_or).value());
  }
  load.reset();

  RepairConfig config = ConfigFromArgs(args, policy);
  config.quarantine = quarantining ? &tuple_sink : nullptr;
  for (const char* key : {"memory-budget", "chunk-rows", "prune", "wal",
                          "resume"}) {
    if (args.Has(key)) ApplyConfigFlag(args, key, &config);
  }
  if (!args.Has("chunk-rows") && config.memory_budget_bytes > 0) {
    // A budget with no explicit chunking means "let the spill file, not
    // the chunk size, bound memory": one whole-file chunk.
    config.chunk_rows = RepairConfig::kWholeFile;
  }
  if (config.resume && config.wal_path.empty()) {
    std::cerr << "--resume requires --wal=PATH\n";
    return 2;
  }

  Timer timer;
  RepairReport result;
  {
    FIXREP_TRACE_SPAN("cli.stream");
    // Stage the output in --out.tmp; only a fully repaired (or fully
    // resumed) stream is renamed into place, so a crash mid-run leaves
    // any previous --out intact for the WAL to resume against.
    StatusOr<AtomicFile> out = AtomicFile::Create(args.Require("out"));
    if (!out.ok()) {
      std::cerr << "error writing --out: " << out.status() << "\n";
      return 1;
    }
    RepairSession session(rules ? &*rules : nullptr, config);
    StatusOr<RepairReport> result_or =
        session.RepairStream(&reader, out->stream());
    if (!result_or.ok()) {
      std::cerr << "error repairing --in: " << result_or.status() << "\n";
      return 1;
    }
    result = result_or.value();
    const Status committed = out->Commit();
    if (!committed.ok()) {
      std::cerr << "error writing --out: " << committed << "\n";
      return 1;
    }
  }
  if (args.Has("quarantine-out")) {
    const int rc = WriteQuarantineFile(args.Require("quarantine-out"),
                                       row_sink, rule_sink, tuple_sink);
    if (rc != 0) return rc;
  }

  std::cout << "repaired " << result.rows << " rows ("
            << result.cells_changed << " cells changed, "
            << result.chunks << " chunks) in "
            << FormatDouble(timer.ElapsedMillis(), 1) << " ms -> "
            << args.Get("out") << "\n";
  if (!config.wal_path.empty()) {
    std::cout << (config.resume ? "resumed via" : "journaled to") << " WAL "
              << config.wal_path << " (" << result.chunks
              << " durable chunks)\n";
  }
  if (config.memory_budget_bytes > 0) {
    std::cout << "memory budget " << config.memory_budget_bytes
              << " bytes: peak resident cell blocks "
              << result.peak_resident_bytes << " bytes\n";
  }
  if (result.columns_pruned > 0) {
    std::cout << "pruned " << result.columns_pruned
              << " columns never mentioned by a rule\n";
  }
  if (policy != OnErrorPolicy::kAbort) {
    const auto* rows_counter =
        MetricsRegistry::Global().FindCounter("fixrep.quarantine.rows");
    const auto* rules_counter =
        MetricsRegistry::Global().FindCounter("fixrep.quarantine.rules");
    std::cout << "on-error=" << OnErrorPolicyName(policy) << ": dropped "
              << (rows_counter == nullptr ? 0 : rows_counter->Value())
              << " malformed rows, "
              << (rules_counter == nullptr ? 0 : rules_counter->Value())
              << " malformed rule blocks, quarantined "
              << result.tuples_quarantined << " tuples";
    if (args.Has("quarantine-out")) {
      std::cout << " -> " << args.Get("quarantine-out");
    }
    std::cout << "\n";
  }
  return 0;
}

// The fault-tolerant repair pipeline: malformed CSV rows and rule blocks
// are dropped (skip) or captured with their raw text (quarantine), each
// failing tuple is isolated with its original values preserved, and the
// rest of the batch completes. Reports counts and writes the dead-letter
// file at the end.
int RepairLenient(const Args& args, OnErrorPolicy policy) {
  auto pool = std::make_shared<ValuePool>();
  const bool quarantining = policy == OnErrorPolicy::kQuarantine;
  VectorQuarantineSink row_sink;
  VectorQuarantineSink rule_sink;
  VectorQuarantineSink tuple_sink;

  auto load = std::make_unique<TraceSpan>("cli.load");
  CsvReadOptions csv_options;
  csv_options.on_error = policy;
  csv_options.quarantine = quarantining ? &row_sink : nullptr;
  StatusOr<Table> table_or = ReadCsvFileLenient(args.Require("in"), "data",
                                               pool, csv_options);
  if (!table_or.ok()) {
    std::cerr << "error reading --in: " << table_or.status() << "\n";
    return 1;
  }
  Table table = std::move(table_or).value();
  std::optional<RuleSet> rules;
  if (!args.Has("rules-dict")) {
    RuleParseOptions rule_options;
    rule_options.on_error = policy;
    rule_options.quarantine = quarantining ? &rule_sink : nullptr;
    StatusOr<RuleSet> rules_or = ParseRulesFileLenient(
        args.Require("rules"), table.schema_ptr(), pool, rule_options);
    if (!rules_or.ok()) {
      std::cerr << "error reading --rules: " << rules_or.status() << "\n";
      return 1;
    }
    rules.emplace(std::move(rules_or).value());
  }
  load.reset();

  Timer timer;
  RepairConfig config = ConfigFromArgs(args, policy);
  config.quarantine = quarantining ? &tuple_sink : nullptr;
  RepairSession session(rules ? &*rules : nullptr, config);
  StatusOr<RepairReport> report_or = session.Repair(&table);
  if (!report_or.ok()) {
    std::cerr << "error repairing --in: " << report_or.status() << "\n";
    return 1;
  }
  const size_t cells_changed = report_or.value().cells_changed;
  const size_t tuples_quarantined = report_or.value().tuples_quarantined;

  {
    FIXREP_TRACE_SPAN("cli.write");
    const Status status = TryWriteCsvFile(table, args.Require("out"));
    if (!status.ok()) {
      std::cerr << "error writing --out: " << status << "\n";
      return 1;
    }
  }
  if (args.Has("quarantine-out")) {
    const int rc = WriteQuarantineFile(args.Require("quarantine-out"),
                                       row_sink, rule_sink, tuple_sink);
    if (rc != 0) return rc;
  }

  const auto* rows_counter =
      MetricsRegistry::Global().FindCounter("fixrep.quarantine.rows");
  const auto* rules_counter =
      MetricsRegistry::Global().FindCounter("fixrep.quarantine.rules");
  std::cout << "repaired " << table.num_rows() << " rows ("
            << cells_changed << " cells changed) in "
            << FormatDouble(timer.ElapsedMillis(), 1) << " ms -> "
            << args.Get("out") << "\n";
  std::cout << "on-error=" << OnErrorPolicyName(policy) << ": dropped "
            << (rows_counter == nullptr ? 0 : rows_counter->Value())
            << " malformed rows, "
            << (rules_counter == nullptr ? 0 : rules_counter->Value())
            << " malformed rule blocks, quarantined " << tuples_quarantined
            << " tuples";
  if (args.Has("quarantine-out")) {
    std::cout << " -> " << args.Get("quarantine-out");
  }
  std::cout << "\n";
  return 0;
}

int Repair(const Args& args) {
  const std::string on_error = args.Get("on-error", "abort");
  const std::optional<OnErrorPolicy> policy =
      TryParseOnErrorPolicy(on_error);
  if (!policy.has_value()) {
    std::cerr << "unknown --on-error '" << on_error
              << "' (want abort|skip|quarantine)\n";
    return 2;
  }
  if (args.Has("stream")) return RepairStream(args, *policy);
  if (args.Has("wal") || args.Has("resume")) {
    std::cerr << "--wal/--resume require --stream\n";
    return 2;
  }
  if (args.Has("log") && args.Has("rules-dict")) {
    std::cerr << "--log (provenance) is incompatible with --rules-dict\n";
    return 2;
  }
  if (*policy != OnErrorPolicy::kAbort) {
    if (args.Has("log")) {
      std::cerr << "--log (provenance) requires --on-error=abort\n";
      return 2;
    }
    return RepairLenient(args, *policy);
  }
  auto pool = std::make_shared<ValuePool>();
  // Phase spans: cli.load and cli.write here, index build + chase inside
  // the engines — together they cover essentially the whole command, so
  // the dumped timeline accounts for the total wall time.
  auto load = std::make_unique<TraceSpan>("cli.load");
  Table table = ReadCsvFile(args.Require("in"), "data", pool);
  std::optional<RuleSet> rules;
  if (!args.Has("rules-dict")) {
    rules.emplace(
        ParseRulesFile(args.Require("rules"), table.schema_ptr(), pool));
  }
  load.reset();
  Timer timer;
  size_t cells_changed = 0;
  if (args.Has("log")) {
    const RepairLog log = RepairWithProvenance(*rules, &table);
    cells_changed = log.repairs.size();
    for (const auto& repair : log.repairs) {
      std::cout << log.Describe(repair, table.schema(), *pool) << "\n";
    }
  } else {
    RepairSession session(rules ? &*rules : nullptr,
                          ConfigFromArgs(args, OnErrorPolicy::kAbort));
    StatusOr<RepairReport> report_or = session.Repair(&table);
    if (!report_or.ok()) {
      std::cerr << "error repairing --in: " << report_or.status() << "\n";
      return 1;
    }
    cells_changed = report_or.value().cells_changed;
  }
  {
    FIXREP_TRACE_SPAN("cli.write");
    WriteCsvFile(table, args.Require("out"));
  }
  std::cout << "repaired " << table.num_rows() << " rows ("
            << cells_changed << " cells changed) in "
            << FormatDouble(timer.ElapsedMillis(), 1) << " ms -> "
            << args.Get("out") << "\n";
  return 0;
}

// Offline WAL inspection: renders the log's deltas back into a
// provenance RepairLog and prints one line per journaled cell repair.
// Standalone — the header carries the schema and values travel as
// strings, so nothing but the log is needed; --rules additionally
// verifies the fingerprint and prints per-rule repair counts.
int Audit(const Args& args) {
  FIXREP_TRACE_SPAN("cli.audit");
  StatusOr<RecoveredRun> run_or = ScanWal(args.Require("wal"));
  if (!run_or.ok()) {
    std::cerr << "error scanning --wal: " << run_or.status() << "\n";
    return 1;
  }
  const RecoveredRun run = std::move(run_or).value();
  StatusOr<WalAudit> audit_or = BuildAudit(run);
  if (!audit_or.ok()) {
    std::cerr << "error replaying --wal: " << audit_or.status() << "\n";
    return 1;
  }
  const WalAudit& audit = audit_or.value();

  std::vector<size_t> per_rule;
  if (args.Has("rules")) {
    const RuleSet rules =
        ParseRulesFile(args.Require("rules"), audit.schema, audit.pool);
    const Status match = ValidateWalFingerprint(run.header, rules);
    if (!match.ok()) {
      std::cerr << "--rules does not match the WAL: " << match << "\n";
      return 1;
    }
    per_rule = audit.log.PerRuleCounts(rules.size());
  }

  for (const CellRepair& repair : audit.log.repairs) {
    std::cout << audit.log.Describe(repair, *audit.schema, *audit.pool)
              << "\n";
  }
  size_t quarantined = 0;
  for (const WalChunk& chunk : run.chunks) {
    quarantined += chunk.quarantined.size();
  }
  std::cout << run.chunks.size() << " durable chunks, "
            << run.rows_durable() << " rows, " << audit.log.repairs.size()
            << " cell repairs, " << quarantined
            << " quarantined tuples\n";
  if (run.tail_discarded) {
    std::cout << "uncommitted tail after byte " << run.durable_bytes
              << " (run was interrupted; resume with --stream --wal"
              << " --resume)\n";
  }
  for (size_t k = 0; k < per_rule.size(); ++k) {
    if (per_rule[k] > 0) {
      std::cout << "rule #" << k << ": " << per_rule[k] << " repairs\n";
    }
  }
  return 0;
}

// Rule-level undo: reverts every cell write a rule made, per the WAL,
// against the repaired CSV. Each delta is verified against the current
// cell value before anything is restored, and the result lands
// atomically at --out.
int Rollback(const Args& args) {
  FIXREP_TRACE_SPAN("cli.rollback");
  StatusOr<RecoveredRun> run_or = ScanWal(args.Require("wal"));
  if (!run_or.ok()) {
    std::cerr << "error scanning --wal: " << run_or.status() << "\n";
    return 1;
  }
  const RecoveredRun run = std::move(run_or).value();
  auto pool = std::make_shared<ValuePool>();
  auto schema =
      std::make_shared<const Schema>("wal", run.header.attribute_names);
  const RuleSet rules = ParseRulesFile(args.Require("rules"), schema, pool);
  if (!args.Has("rule")) {
    std::cerr << "missing required --rule (the rule index to undo)\n";
    return 2;
  }
  const size_t rule_index = args.GetSizeT("rule", 0);
  StatusOr<RollbackReport> report_or = RollbackRule(
      run, rules, rule_index, args.Require("in"), args.Require("out"));
  if (!report_or.ok()) {
    std::cerr << "rollback failed: " << report_or.status() << "\n";
    return 1;
  }
  std::cout << "rolled back rule #" << rule_index << ": "
            << report_or.value().cells_restored << " cells restored across "
            << report_or.value().rows_touched << " rows -> "
            << args.Get("out") << "\n";
  return 0;
}

int Eval(const Args& args) {
  auto pool = std::make_shared<ValuePool>();
  auto load = std::make_unique<TraceSpan>("cli.load");
  const Table truth = ReadCsvFile(args.Require("truth"), "data", pool);
  const Table dirty = ReadCsvFile(args.Require("dirty"), "data", pool);
  const Table repaired =
      ReadCsvFile(args.Require("repaired"), "data", pool);
  load.reset();
  FIXREP_TRACE_SPAN("cli.eval");
  const Accuracy accuracy = EvaluateRepair(truth, dirty, repaired);
  TextTable table({"metric", "value"});
  table.AddRow({"erroneous cells",
                std::to_string(accuracy.cells_erroneous)});
  table.AddRow({"changed cells", std::to_string(accuracy.cells_changed)});
  table.AddRow({"corrected cells",
                std::to_string(accuracy.cells_corrected)});
  table.AddRow({"broken cells", std::to_string(accuracy.cells_broken)});
  table.AddRow({"precision", FormatDouble(accuracy.precision())});
  table.AddRow({"recall", FormatDouble(accuracy.recall())});
  table.AddRow({"f1", FormatDouble(accuracy.f1())});
  table.Print(std::cout);
  return 0;
}

// ---- daemon verbs (docs/serving.md) ----

// Atomically (temp + rename) writes the bound TCP port to `path`, so a
// --port=0 / --metrics-port=0 ephemeral listener is discoverable by
// scripts without scraping stderr.
int WritePortFile(const std::string& path, int port) {
  StatusOr<AtomicFile> file = AtomicFile::Create(path);
  if (!file.ok()) {
    std::cerr << "--port-file: " << file.status() << "\n";
    return 1;
  }
  file->stream() << port << "\n";
  const Status committed = file->Commit();
  if (!committed.ok()) {
    std::cerr << "--port-file: " << committed << "\n";
    return 1;
  }
  return 0;
}

// SIGTERM/SIGINT land here while `serve` runs; RequestShutdown is one
// async-signal-safe pipe write that unparks the main thread, which then
// drains gracefully.
std::atomic<serve::RepairDaemon*> g_serving_daemon{nullptr};

void OnShutdownSignal(int) {
  serve::RepairDaemon* daemon =
      g_serving_daemon.load(std::memory_order_acquire);
  if (daemon != nullptr) daemon->RequestShutdown();
}

int Serve(const Args& args) {
  const std::vector<std::string> rulesets = args.GetAll("ruleset");
  if (rulesets.empty()) {
    std::cerr << "serve needs at least one --ruleset NAME=PATH[@a,b,c]\n";
    return 2;
  }
  serve::TenantRegistry registry;
  for (const std::string& entry : rulesets) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::cerr << "bad --ruleset '" << entry
                << "' (want NAME=DICT.frd for a compiled dictionary or "
                   "NAME=RULES.txt@a,b,c for a text rules file)\n";
      return 2;
    }
    const std::string name = entry.substr(0, eq);
    const Status loaded = registry.Load(name, entry.substr(eq + 1));
    if (!loaded.ok()) {
      std::cerr << "cannot load rule set '" << name << "': " << loaded
                << "\n";
      return 1;
    }
    const auto snapshot = registry.Find(name);
    std::cerr << "[fixrep] rule set '" << name << "': "
              << snapshot->num_rules() << " rules ("
              << (snapshot->dict_backed() ? "dictionary" : "text") << ")\n";
  }

  if (args.Has("socket") == args.Has("port")) {
    std::cerr << "serve needs exactly one of --socket PATH and --port N\n";
    return 2;
  }
  serve::DaemonOptions options;
  if (args.Has("socket")) {
    options.unix_socket_path = args.Require("socket");
  } else {
    options.tcp_port = static_cast<int>(args.GetSizeT("port", 0));
  }
  options.max_pending = args.GetSizeT("max-pending", options.max_pending);
  StatusOr<std::unique_ptr<serve::RepairDaemon>> daemon_or =
      serve::RepairDaemon::Start(&registry, std::move(options));
  if (!daemon_or.ok()) {
    std::cerr << "cannot start daemon: " << daemon_or.status() << "\n";
    return 1;
  }
  const std::unique_ptr<serve::RepairDaemon> daemon =
      std::move(daemon_or).value();
  if (args.Has("socket")) {
    std::cerr << "[fixrep] serving " << registry.size() << " rule sets on "
              << daemon->socket_path() << "\n";
  } else {
    std::cerr << "[fixrep] serving " << registry.size()
              << " rule sets on 127.0.0.1:" << daemon->port() << "\n";
    if (args.Has("port-file")) {
      const int rc = WritePortFile(args.Require("port-file"),
                                   daemon->port());
      if (rc != 0) return rc;
    }
  }

  g_serving_daemon.store(daemon.get(), std::memory_order_release);
  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
  daemon->WaitForShutdownRequest();
  std::cerr << "[fixrep] shutdown requested; draining in-flight"
               " requests\n";
  daemon->Shutdown();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_serving_daemon.store(nullptr, std::memory_order_release);
  std::cout << "served " << daemon->requests_served()
            << " requests, rejected " << daemon->requests_rejected()
            << " at admission\n";
  return 0;
}

serve::ClientOptions ClientOptionsFromArgs(const Args& args) {
  if (args.Has("socket") == args.Has("port")) {
    std::cerr << "need exactly one of --socket PATH and --port N for the"
                 " daemon endpoint\n";
    std::exit(2);
  }
  serve::ClientOptions options;
  if (args.Has("socket")) {
    options.unix_socket_path = args.Require("socket");
  } else {
    options.tcp_port = static_cast<int>(args.GetSizeT("port", 0));
  }
  return options;
}

StatusOr<serve::Client> ConnectOrExplain(const Args& args) {
  StatusOr<serve::Client> client =
      serve::Client::Connect(ClientOptionsFromArgs(args));
  if (!client.ok()) {
    std::cerr << "cannot reach daemon: " << client.status() << "\n";
  }
  return client;
}

int Ping(const Args& args) {
  StatusOr<serve::Client> client = ConnectOrExplain(args);
  if (!client.ok()) return 1;
  const StatusOr<serve::PingInfo> info = client->Ping();
  if (!info.ok()) {
    std::cerr << "ping failed: " << info.status() << "\n";
    return 1;
  }
  StatusOr<std::vector<serve::RuleSetInfo>> sets = client->List();
  if (!sets.ok()) {
    std::cerr << "list failed: " << sets.status() << "\n";
    return 1;
  }
  TextTable table({"rule set", "rules", "generation", "backend"});
  for (const serve::RuleSetInfo& info_row : sets.value()) {
    table.AddRow({info_row.name, std::to_string(info_row.num_rules),
                  std::to_string(info_row.generation),
                  info_row.dict_backed ? "dictionary" : "text"});
  }
  table.Print(std::cout);
  std::cout << info->requests_served << " requests served, "
            << info->requests_rejected << " rejected at admission\n";
  return 0;
}

// One CSV batch through a running daemon: the repair knobs serialize as
// config headers (FormatRepairConfig), the repaired bytes land via
// temp + rename, and the quarantine file has the same format as the
// local repair flows'.
int Submit(const Args& args) {
  const std::string on_error = args.Get("on-error", "abort");
  const std::optional<OnErrorPolicy> policy =
      TryParseOnErrorPolicy(on_error);
  if (!policy.has_value()) {
    std::cerr << "unknown --on-error '" << on_error
              << "' (want abort|skip|quarantine)\n";
    return 2;
  }
  std::ifstream in(args.Require("in"), std::ios::binary);
  if (!in.good()) {
    std::cerr << "error reading --in: cannot open " << args.Get("in")
              << "\n";
    return 1;
  }
  std::ostringstream csv;
  csv << in.rdbuf();

  StatusOr<serve::Client> client = ConnectOrExplain(args);
  if (!client.ok()) return 1;
  Timer timer;
  const StatusOr<serve::RepairResult> result = client->Submit(
      args.Require("tenant"),
      FormatRepairConfig(ConfigFromArgs(args, *policy)), csv.str());
  if (!result.ok()) {
    std::cerr << "submit failed: " << result.status() << "\n";
    return 1;
  }
  StatusOr<AtomicFile> out = AtomicFile::Create(args.Require("out"));
  if (!out.ok()) {
    std::cerr << "error writing --out: " << out.status() << "\n";
    return 1;
  }
  out->stream() << result->csv;
  const Status committed = out->Commit();
  if (!committed.ok()) {
    std::cerr << "error writing --out: " << committed << "\n";
    return 1;
  }
  if (args.Has("quarantine-out")) {
    StatusOr<AtomicFile> quarantine =
        AtomicFile::Create(args.Require("quarantine-out"));
    if (!quarantine.ok()) {
      std::cerr << "error writing --quarantine-out: " << quarantine.status()
                << "\n";
      return 1;
    }
    quarantine->stream() << result->quarantine;
    const Status q_committed = quarantine->Commit();
    if (!q_committed.ok()) {
      std::cerr << "error writing --quarantine-out: " << q_committed
                << "\n";
      return 1;
    }
  }
  std::cout << "repaired " << result->rows << " rows ("
            << result->cells_changed << " cells changed) in "
            << FormatDouble(timer.ElapsedMillis(), 1) << " ms -> "
            << args.Get("out") << "\n";
  if (*policy != OnErrorPolicy::kAbort) {
    std::cout << "on-error=" << OnErrorPolicyName(*policy)
              << ": quarantined " << result->tuples_quarantined
              << " tuples";
    if (args.Has("quarantine-out")) {
      std::cout << " -> " << args.Get("quarantine-out");
    }
    std::cout << "\n";
  }
  return 0;
}

int Reload(const Args& args) {
  const std::string entry = args.Require("ruleset");
  const size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    std::cerr << "bad --ruleset '" << entry
              << "' (want NAME=DICT.frd or NAME=RULES.txt@a,b,c)\n";
    return 2;
  }
  StatusOr<serve::Client> client = ConnectOrExplain(args);
  if (!client.ok()) return 1;
  const std::string name = entry.substr(0, eq);
  const StatusOr<serve::ReloadResult> result =
      client->Reload(name, entry.substr(eq + 1));
  if (!result.ok()) {
    std::cerr << "reload failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "rule set '" << name << "' now generation "
            << result->generation << " (" << result->num_rules
            << " rules)\n";
  return 0;
}

int Dispatch(const Args& args) {
  const std::string& command = args.command();
  if (command == "rules") {
    if (args.subcommand() == "compile") return RulesCompile(args);
    if (args.subcommand() == "inspect") return RulesInspect(args);
    std::cerr << "usage: fixrep_cli rules compile|inspect [--flags]\n";
    return 2;
  }
  if (command == "gen-data") return GenData(args);
  if (command == "gen-rules") return GenRules(args);
  if (command == "discover") return Discover(args);
  if (command == "check") return Check(args);
  if (command == "repair") return Repair(args);
  if (command == "serve") return Serve(args);
  if (command == "submit") return Submit(args);
  if (command == "ping") return Ping(args);
  if (command == "reload") return Reload(args);
  if (command == "audit") return Audit(args);
  if (command == "rollback") return Rollback(args);
  if (command == "eval") return Eval(args);
  return Usage();
}

int Main(int argc, char** argv) {
  InitTraceClock();  // span offsets and total_ns count from program start
  if (argc < 2) return Usage();
  const Args args(argc, argv);
  if (args.Has("log-level")) {
    const std::string text = args.Require("log-level");
    const std::optional<LogLevel> level = TryParseLogLevel(text);
    if (!level.has_value()) {
      std::cerr << "unknown --log-level '" << text
                << "' (want debug|info|warn|error|off)\n";
      return 2;
    }
    SetGlobalLogLevel(*level);
  }
  // Pin the scalar kernel before any repair work runs; beats FIXREP_SIMD
  // since SetSimdKernel overrides the env-derived default.
  if (args.Has("no-simd")) SetSimdKernel(SimdKernel::kScalar);
  // Live telemetry wraps the whole command: the journal captures every
  // span from load to flush, and the endpoint stays scrapeable until the
  // run exits.
  std::unique_ptr<TelemetryJournal> journal;
  if (args.Has("telemetry-out")) {
    StatusOr<std::unique_ptr<TelemetryJournal>> journal_or =
        TelemetryJournal::Open(args.Require("telemetry-out"));
    if (!journal_or.ok()) {
      std::cerr << "--telemetry-out: " << journal_or.status() << "\n";
      return 2;
    }
    journal = std::move(journal_or).value();
    journal->Append(TelemetryEvent("run_start")
                        .SetString("command", args.command()));
    SetGlobalJournal(journal.get());
  }
  std::unique_ptr<MetricsServer> server;
  if (args.Has("metrics-socket") || args.Has("metrics-port")) {
    if (args.Has("metrics-socket") && args.Has("metrics-port")) {
      std::cerr << "pick one of --metrics-socket and --metrics-port\n";
      return 2;
    }
    MetricsServerOptions options;
    if (args.Has("metrics-socket")) {
      options.unix_socket_path = args.Require("metrics-socket");
    } else {
      options.tcp_port = static_cast<int>(args.GetSizeT("metrics-port", 0));
    }
    StatusOr<std::unique_ptr<MetricsServer>> server_or =
        MetricsServer::Start(std::move(options));
    if (!server_or.ok()) {
      std::cerr << "metrics endpoint: " << server_or.status() << "\n";
      return 2;
    }
    server = std::move(server_or).value();
    if (args.Has("metrics-port")) {
      std::cerr << "[fixrep] serving /metrics on 127.0.0.1:"
                << server->port() << "\n";
      // Under `serve` the daemon port owns --port-file; everywhere else
      // it publishes the /metrics port (pairs with --metrics-port=0).
      if (args.Has("port-file") && args.command() != "serve") {
        const int rc = WritePortFile(args.Require("port-file"),
                                     server->port());
        if (rc != 0) return rc;
      }
    } else {
      std::cerr << "[fixrep] serving /metrics on "
                << server->socket_path() << "\n";
    }
  }
  std::unique_ptr<HeartbeatSampler> sampler;
  if (journal != nullptr || args.Has("progress") ||
      args.Has("heartbeat-ms")) {
    HeartbeatOptions options;
    options.interval_ms = args.GetSizeT("heartbeat-ms", 1000);
    options.journal = journal.get();
    options.progress = args.Has("progress");
    sampler = std::make_unique<HeartbeatSampler>(options);
    sampler->Start();
  }

  const int rc = Dispatch(args);

  if (sampler != nullptr) sampler->Stop();  // emits the final sample
  if (server != nullptr) server->Stop();
  if (journal != nullptr) {
    SetGlobalJournal(nullptr);
    journal->Append(TelemetryEvent("run_end")
                        .Set("exit_code", static_cast<int64_t>(rc))
                        .Set("rss_peak_bytes", TelemetryPeakRssBytes()));
  }
  if (args.Has("metrics-out")) {
    const std::string path = args.Require("metrics-out");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot open --metrics-out path '" << path << "'\n";
      return 2;
    }
    WriteMetricsJson(out);
    FIXREP_LOG(Info) << "wrote metrics snapshot" << Kv("path", path);
  }
  return rc;
}

}  // namespace
}  // namespace fixrep::cli

int main(int argc, char** argv) { return fixrep::cli::Main(argc, argv); }
