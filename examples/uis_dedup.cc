// uis mailing-list cleaning with a baseline face-off.
//
// Generates the uis dataset (mostly-unique persons, few repeated
// patterns), corrupts it, then repairs it four ways — fixing rules
// (lRepair), the Heu and Csm FD-repair heuristics, and automated editing
// rules — and prints one accuracy/runtime row per method. This is the
// single-configuration version of the paper's Fig. 10(e)-(h) / Fig. 12(b)
// comparisons.
//
// Run: ./uis_dedup [rows] [rules] [typo_share]

#include <cstdlib>
#include <iostream>
#include <string>

#include "baselines/csm.h"
#include "baselines/editing.h"
#include "baselines/heu.h"
#include "common/timer.h"
#include "datagen/noise.h"
#include "datagen/uis.h"
#include "eval/metrics.h"
#include "eval/text_table.h"
#include "repair/session.h"
#include "rulegen/rulegen.h"

namespace {

void Report(fixrep::TextTable* table, const std::string& name,
            const fixrep::Accuracy& accuracy, double millis) {
  table->AddRow({name, fixrep::FormatDouble(accuracy.precision()),
                 fixrep::FormatDouble(accuracy.recall()),
                 fixrep::FormatDouble(accuracy.f1()),
                 std::to_string(accuracy.cells_changed),
                 fixrep::FormatDouble(millis, 1) + " ms"});
}

}  // namespace

int main(int argc, char** argv) {
  fixrep::UisOptions uis;
  uis.rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 15000;
  fixrep::RuleGenOptions rulegen;
  rulegen.max_rules = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;
  fixrep::NoiseOptions noise;
  noise.typo_share = argc > 3 ? std::strtod(argv[3], nullptr) : 0.5;

  std::cout << "Generating " << uis.rows << " uis rows...\n";
  fixrep::GeneratedData data = fixrep::GenerateUis(uis);
  fixrep::Table dirty = data.clean;
  const auto report = fixrep::InjectNoise(
      &dirty, fixrep::ConstraintAttributes(*data.schema, data.fds), noise);
  std::cout << "Corrupted " << report.rows_corrupted << " rows\n";

  const fixrep::RuleSet rules =
      fixrep::GenerateRules(data.clean, dirty, data.fds, rulegen);
  std::cout << "Generated " << rules.size() << " fixing rules\n\n";

  fixrep::TextTable table(
      {"method", "precision", "recall", "f1", "changed", "time"});
  fixrep::Timer timer;

  {
    fixrep::Table repaired = dirty;
    fixrep::RepairSession session(&rules);
    timer.Restart();
    session.Repair(&repaired).value();
    Report(&table, "Fix (lRepair)",
           EvaluateRepair(data.clean, dirty, repaired),
           timer.ElapsedMillis());
  }
  {
    fixrep::Table repaired = dirty;
    fixrep::HeuRepairer heu(data.fds);
    timer.Restart();
    heu.Repair(&repaired);
    Report(&table, "Heu", EvaluateRepair(data.clean, dirty, repaired),
           timer.ElapsedMillis());
  }
  {
    fixrep::Table repaired = dirty;
    fixrep::CsmRepairer csm(data.fds);
    timer.Restart();
    csm.Repair(&repaired);
    Report(&table, "Csm", EvaluateRepair(data.clean, dirty, repaired),
           timer.ElapsedMillis());
  }
  {
    fixrep::Table repaired = dirty;
    fixrep::AutoEditRepairer edit(&rules);
    timer.Restart();
    edit.RepairTable(&repaired);
    Report(&table, "Edit (auto)", EvaluateRepair(data.clean, dirty, repaired),
           timer.ElapsedMillis());
  }

  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 10(e)-(h)): Fix has the top\n"
               "precision; every method has low recall on uis because the\n"
               "data has few repeated patterns per FD.\n";
  return 0;
}
