// Quickstart: the paper's running example end to end.
//
// Builds the Travel table of Fig. 1, the four fixing rules of Examples 3
// and Section 6.2, checks their consistency, repairs the table with both
// engines, and walks through the Example 8 conflict (phi_1' vs phi_3)
// and its Example 10 resolution.
//
// Run: ./quickstart

#include <iostream>

#include "datagen/travel.h"
#include "repair/session.h"
#include "rules/consistency.h"
#include "rules/resolution.h"

namespace {

void PrintTable(const char* title, const fixrep::Table& table) {
  std::cout << title << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::cout << "  r" << (r + 1) << ": " << table.FormatRow(r) << "\n";
  }
}

}  // namespace

int main() {
  fixrep::TravelExample example;

  std::cout << "== Fixing rules (Fig. 3 / Section 6.2) ==\n";
  for (size_t i = 0; i < example.rules.size(); ++i) {
    std::cout << "  phi_" << (i + 1) << ": "
              << example.rules.rule(i).Format(*example.schema, *example.pool)
              << "\n";
  }

  std::cout << "\n== Consistency (Section 5) ==\n";
  std::cout << "  isConsist_r: "
            << (IsConsistentChar(example.rules) ? "consistent"
                                                : "INCONSISTENT")
            << "\n";
  std::cout << "  isConsist_t: "
            << (IsConsistentEnum(example.rules) ? "consistent"
                                                : "INCONSISTENT")
            << "\n";

  PrintTable("\n== Dirty Travel data (Fig. 1) ==", example.dirty);

  // Repair with lRepair (Fig. 7); cRepair (Fig. 6) must agree. One
  // RepairSession per engine — the config picks the algorithm.
  fixrep::Table by_lrepair = example.dirty;
  fixrep::RepairSession lrepair(&example.rules);  // default: lRepair
  const auto lrepair_report = lrepair.Repair(&by_lrepair);

  fixrep::Table by_crepair = example.dirty;
  fixrep::RepairConfig chase;
  chase.engine = fixrep::RepairEngine::kCRepair;
  fixrep::RepairSession crepair(&example.rules, chase);
  crepair.Repair(&by_crepair);

  PrintTable("\n== After lRepair ==", by_lrepair);
  std::cout << "  cells changed: " << lrepair_report.value().cells_changed
            << " (cRepair agrees: "
            << (by_crepair.RowsEqual(by_lrepair) ? "yes" : "NO")
            << ")\n";

  bool matches_clean = true;
  for (size_t r = 0; r < by_lrepair.num_rows(); ++r) {
    matches_clean &= by_lrepair.row(r) == example.clean.row(r);
  }
  std::cout << "  all four errors of Fig. 1 corrected: "
            << (matches_clean ? "yes" : "NO") << "\n";

  std::cout << "\n== Example 8: an inconsistent rule ==\n";
  fixrep::RuleSet with_prime = example.rules;
  const fixrep::FixingRule phi1_prime =
      fixrep::MakeTravelPhi1Prime(&example);
  std::cout << "  phi_1': "
            << phi1_prime.Format(*example.schema, *example.pool) << "\n";
  with_prime.Add(phi1_prime);
  std::vector<fixrep::Conflict> conflicts;
  if (!IsConsistentChar(with_prime, &conflicts)) {
    std::cout << "  " << conflicts[0].Describe(with_prime) << "\n";
  }

  std::cout << "\n== Example 10: expert resolution by pruning ==\n";
  const auto report = fixrep::ResolveByPruning(&with_prime);
  std::cout << "  negative patterns removed: " << report.patterns_removed
            << ", rules dropped: " << report.dropped_rules.size() << "\n";
  std::cout << "  set consistent again: "
            << (IsConsistentChar(with_prime) ? "yes" : "NO") << "\n";
  return 0;
}
