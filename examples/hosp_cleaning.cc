// End-to-end cleaning of a hosp-style dataset (the paper's Exp-2 loop):
//
//   generate clean data -> inject noise -> derive fixing rules from FD
//   violations -> ensure consistency -> repair with lRepair -> evaluate
//   precision/recall -> write dirty and repaired CSVs.
//
// Run: ./hosp_cleaning [rows] [rules] [noise_rate] [typo_share]
// Outputs hosp_dirty.csv and hosp_repaired.csv in the working directory.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/timer.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "deps/violation.h"
#include "eval/metrics.h"
#include "eval/text_table.h"
#include "relation/csv.h"
#include "repair/session.h"
#include "rulegen/rulegen.h"
#include "rules/consistency.h"

int main(int argc, char** argv) {
  fixrep::HospOptions hosp;
  hosp.rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  hosp.num_hospitals = std::max<size_t>(hosp.rows / 30, 50);
  fixrep::RuleGenOptions rulegen;
  rulegen.max_rules = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000;
  fixrep::NoiseOptions noise;
  noise.noise_rate = argc > 3 ? std::strtod(argv[3], nullptr) : 0.10;
  noise.typo_share = argc > 4 ? std::strtod(argv[4], nullptr) : 0.5;

  std::cout << "Generating " << hosp.rows << " hosp rows ("
            << hosp.num_hospitals << " hospitals)...\n";
  fixrep::GeneratedData data = fixrep::GenerateHosp(hosp);
  for (const auto& fd : data.fds) {
    std::cout << "  FD: " << FormatFd(*data.schema, fd) << "\n";
  }

  fixrep::Table dirty = data.clean;
  const auto attrs = fixrep::ConstraintAttributes(*data.schema, data.fds);
  const auto noise_report = fixrep::InjectNoise(&dirty, attrs, noise);
  std::cout << "Injected noise: " << noise_report.rows_corrupted
            << " corrupted rows (" << noise_report.typos << " typos, "
            << noise_report.active_domain_errors
            << " active-domain errors)\n";
  std::cout << "FD-violating rows in dirty data: "
            << fixrep::CountViolatingRows(dirty, data.fds) << "\n";

  fixrep::Timer timer;
  const fixrep::RuleSet rules =
      fixrep::GenerateRules(data.clean, dirty, data.fds, rulegen);
  std::cout << "Generated " << rules.size() << " fixing rules (size(Sigma)="
            << rules.TotalSize() << ") in "
            << fixrep::FormatDouble(timer.ElapsedMillis(), 1) << " ms\n";

  timer.Restart();
  const bool consistent = IsConsistentChar(rules);
  std::cout << "isConsist_r over " << rules.size() << " rules: "
            << (consistent ? "consistent" : "INCONSISTENT") << " ("
            << fixrep::FormatDouble(timer.ElapsedMillis(), 1) << " ms)\n";

  fixrep::Table repaired = dirty;
  fixrep::RepairSession session(&rules);
  timer.Restart();
  const auto repair_report = session.Repair(&repaired);
  std::cout << "lRepair over " << repaired.num_rows() << " tuples: "
            << fixrep::FormatDouble(timer.ElapsedMillis(), 1) << " ms, "
            << repair_report.value().cells_changed << " cells changed\n";

  const fixrep::Accuracy accuracy =
      fixrep::EvaluateRepair(data.clean, dirty, repaired);
  fixrep::TextTable table({"metric", "value"});
  table.AddRow({"erroneous cells", std::to_string(accuracy.cells_erroneous)});
  table.AddRow({"changed cells", std::to_string(accuracy.cells_changed)});
  table.AddRow({"corrected cells",
                std::to_string(accuracy.cells_corrected)});
  table.AddRow({"precision", fixrep::FormatDouble(accuracy.precision())});
  table.AddRow({"recall", fixrep::FormatDouble(accuracy.recall())});
  table.AddRow({"f1", fixrep::FormatDouble(accuracy.f1())});
  table.Print(std::cout);

  fixrep::WriteCsvFile(dirty, "hosp_dirty.csv");
  fixrep::WriteCsvFile(repaired, "hosp_repaired.csv");
  std::cout << "Wrote hosp_dirty.csv and hosp_repaired.csv\n";
  return 0;
}
