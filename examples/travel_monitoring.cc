// Data monitoring: repairing tuples as they arrive.
//
// The editing-rules line of work frames repair-at-entry ("data
// monitoring") as the place where per-tuple repair shines: fix records
// before they enter the database instead of cleaning the database later.
// Fixing rules do this without a user in the loop. This example feeds a
// batch of Travel bookings through one RepairSession and prints an
// audit line for every automatic correction.
//
// Run: ./travel_monitoring

#include <iostream>
#include <vector>

#include "datagen/travel.h"
#include "repair/session.h"

int main() {
  fixrep::TravelExample example;
  fixrep::RepairSession session(&example.rules);
  std::cout << "monitoring with " << example.rules.size()
            << " fixing rules\n\n";

  // The incoming stream: the four Fig. 1 records plus a few more
  // arrivals, clean and dirty.
  fixrep::Table stream = example.dirty;
  stream.AppendRowStrings({"Nan", "China", "Hongkong", "Shanghai", "ICDE"});
  stream.AppendRowStrings({"Wei", "Japan", "Tokyo", "Tokyo", "ICDE"});
  stream.AppendRowStrings({"Eva", "Canada", "Ottawa", "Toronto", "ICDE"});

  // Keep the as-arrived records for the audit diff, then repair the
  // whole batch in place.
  const fixrep::Table arrived = stream;
  session.Repair(&stream).value();

  size_t accepted_clean = 0;
  size_t repaired = 0;
  for (size_t r = 0; r < stream.num_rows(); ++r) {
    const fixrep::TupleRef before = arrived.row(r);
    if (before == stream.row(r)) {
      ++accepted_clean;
      std::cout << "accept  " << stream.FormatRow(r) << "\n";
      continue;
    }
    ++repaired;
    std::cout << "repair  (";
    for (size_t a = 0; a < before.size(); ++a) {
      if (a > 0) std::cout << ", ";
      const bool changed = before[a] != stream.cell(r, static_cast<int>(a));
      if (changed) {
        std::cout << example.pool->GetString(before[a]) << " => ";
      }
      std::cout << stream.CellString(r, static_cast<int>(a));
    }
    std::cout << ")\n";
  }

  std::cout << "\n" << stream.num_rows() << " records: " << accepted_clean
            << " accepted as-is, " << repaired
            << " repaired on entry, 0 user interactions\n";
  return 0;
}
