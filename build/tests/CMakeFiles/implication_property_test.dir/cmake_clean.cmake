file(REMOVE_RECURSE
  "CMakeFiles/implication_property_test.dir/implication_property_test.cc.o"
  "CMakeFiles/implication_property_test.dir/implication_property_test.cc.o.d"
  "implication_property_test"
  "implication_property_test.pdb"
  "implication_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implication_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
