# Empty dependencies file for implication_property_test.
# This may be replaced when dependencies are built.
