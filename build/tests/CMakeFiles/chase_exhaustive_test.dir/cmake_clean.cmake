file(REMOVE_RECURSE
  "CMakeFiles/chase_exhaustive_test.dir/chase_exhaustive_test.cc.o"
  "CMakeFiles/chase_exhaustive_test.dir/chase_exhaustive_test.cc.o.d"
  "chase_exhaustive_test"
  "chase_exhaustive_test.pdb"
  "chase_exhaustive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_exhaustive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
