# Empty dependencies file for chase_exhaustive_test.
# This may be replaced when dependencies are built.
