file(REMOVE_RECURSE
  "CMakeFiles/rulegen_test.dir/rulegen_test.cc.o"
  "CMakeFiles/rulegen_test.dir/rulegen_test.cc.o.d"
  "rulegen_test"
  "rulegen_test.pdb"
  "rulegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
