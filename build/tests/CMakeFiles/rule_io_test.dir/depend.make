# Empty dependencies file for rule_io_test.
# This may be replaced when dependencies are built.
