# Empty dependencies file for from_cfds_test.
# This may be replaced when dependencies are built.
