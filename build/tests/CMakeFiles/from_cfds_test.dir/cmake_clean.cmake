file(REMOVE_RECURSE
  "CMakeFiles/from_cfds_test.dir/from_cfds_test.cc.o"
  "CMakeFiles/from_cfds_test.dir/from_cfds_test.cc.o.d"
  "from_cfds_test"
  "from_cfds_test.pdb"
  "from_cfds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/from_cfds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
