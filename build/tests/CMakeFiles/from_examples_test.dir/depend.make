# Empty dependencies file for from_examples_test.
# This may be replaced when dependencies are built.
