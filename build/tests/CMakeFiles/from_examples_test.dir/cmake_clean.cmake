file(REMOVE_RECURSE
  "CMakeFiles/from_examples_test.dir/from_examples_test.cc.o"
  "CMakeFiles/from_examples_test.dir/from_examples_test.cc.o.d"
  "from_examples_test"
  "from_examples_test.pdb"
  "from_examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/from_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
