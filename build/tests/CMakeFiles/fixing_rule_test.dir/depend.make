# Empty dependencies file for fixing_rule_test.
# This may be replaced when dependencies are built.
