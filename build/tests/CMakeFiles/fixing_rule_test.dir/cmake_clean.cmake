file(REMOVE_RECURSE
  "CMakeFiles/fixing_rule_test.dir/fixing_rule_test.cc.o"
  "CMakeFiles/fixing_rule_test.dir/fixing_rule_test.cc.o.d"
  "fixing_rule_test"
  "fixing_rule_test.pdb"
  "fixing_rule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixing_rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
