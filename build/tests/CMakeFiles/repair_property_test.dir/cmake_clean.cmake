file(REMOVE_RECURSE
  "CMakeFiles/repair_property_test.dir/repair_property_test.cc.o"
  "CMakeFiles/repair_property_test.dir/repair_property_test.cc.o.d"
  "repair_property_test"
  "repair_property_test.pdb"
  "repair_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
