# Empty dependencies file for editing_master_test.
# This may be replaced when dependencies are built.
