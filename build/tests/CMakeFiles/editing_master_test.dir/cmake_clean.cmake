file(REMOVE_RECURSE
  "CMakeFiles/editing_master_test.dir/editing_master_test.cc.o"
  "CMakeFiles/editing_master_test.dir/editing_master_test.cc.o.d"
  "editing_master_test"
  "editing_master_test.pdb"
  "editing_master_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/editing_master_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
