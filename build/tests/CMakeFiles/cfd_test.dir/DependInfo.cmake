
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cfd_test.cc" "tests/CMakeFiles/cfd_test.dir/cfd_test.cc.o" "gcc" "tests/CMakeFiles/cfd_test.dir/cfd_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rulegen/CMakeFiles/fixrep_rulegen.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fixrep_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/fixrep_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/fixrep_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/fixrep_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/fixrep_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/fixrep_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/fixrep_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fixrep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
