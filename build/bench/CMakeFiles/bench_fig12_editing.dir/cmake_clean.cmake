file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_editing.dir/bench_fig12_editing.cc.o"
  "CMakeFiles/bench_fig12_editing.dir/bench_fig12_editing.cc.o.d"
  "bench_fig12_editing"
  "bench_fig12_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
