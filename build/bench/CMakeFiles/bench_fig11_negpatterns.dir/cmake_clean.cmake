file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_negpatterns.dir/bench_fig11_negpatterns.cc.o"
  "CMakeFiles/bench_fig11_negpatterns.dir/bench_fig11_negpatterns.cc.o.d"
  "bench_fig11_negpatterns"
  "bench_fig11_negpatterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_negpatterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
