# Empty compiler generated dependencies file for bench_fig11_negpatterns.
# This may be replaced when dependencies are built.
