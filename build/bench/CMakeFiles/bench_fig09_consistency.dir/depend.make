# Empty dependencies file for bench_fig09_consistency.
# This may be replaced when dependencies are built.
