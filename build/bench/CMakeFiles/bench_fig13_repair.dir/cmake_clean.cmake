file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_repair.dir/bench_fig13_repair.cc.o"
  "CMakeFiles/bench_fig13_repair.dir/bench_fig13_repair.cc.o.d"
  "bench_fig13_repair"
  "bench_fig13_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
