# Empty dependencies file for fixrep_cli.
# This may be replaced when dependencies are built.
