file(REMOVE_RECURSE
  "CMakeFiles/fixrep_cli.dir/fixrep_cli.cc.o"
  "CMakeFiles/fixrep_cli.dir/fixrep_cli.cc.o.d"
  "fixrep_cli"
  "fixrep_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixrep_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
