file(REMOVE_RECURSE
  "CMakeFiles/uis_dedup.dir/uis_dedup.cc.o"
  "CMakeFiles/uis_dedup.dir/uis_dedup.cc.o.d"
  "uis_dedup"
  "uis_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uis_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
