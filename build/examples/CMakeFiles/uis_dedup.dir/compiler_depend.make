# Empty compiler generated dependencies file for uis_dedup.
# This may be replaced when dependencies are built.
