file(REMOVE_RECURSE
  "CMakeFiles/rule_authoring.dir/rule_authoring.cc.o"
  "CMakeFiles/rule_authoring.dir/rule_authoring.cc.o.d"
  "rule_authoring"
  "rule_authoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_authoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
