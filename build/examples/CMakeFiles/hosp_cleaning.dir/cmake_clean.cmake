file(REMOVE_RECURSE
  "CMakeFiles/hosp_cleaning.dir/hosp_cleaning.cc.o"
  "CMakeFiles/hosp_cleaning.dir/hosp_cleaning.cc.o.d"
  "hosp_cleaning"
  "hosp_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosp_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
