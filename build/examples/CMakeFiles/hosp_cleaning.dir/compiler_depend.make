# Empty compiler generated dependencies file for hosp_cleaning.
# This may be replaced when dependencies are built.
