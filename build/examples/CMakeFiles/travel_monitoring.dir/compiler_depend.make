# Empty compiler generated dependencies file for travel_monitoring.
# This may be replaced when dependencies are built.
