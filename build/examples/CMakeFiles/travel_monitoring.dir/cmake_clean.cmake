file(REMOVE_RECURSE
  "CMakeFiles/travel_monitoring.dir/travel_monitoring.cc.o"
  "CMakeFiles/travel_monitoring.dir/travel_monitoring.cc.o.d"
  "travel_monitoring"
  "travel_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
