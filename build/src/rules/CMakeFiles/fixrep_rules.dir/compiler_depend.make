# Empty compiler generated dependencies file for fixrep_rules.
# This may be replaced when dependencies are built.
