
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/consistency.cc" "src/rules/CMakeFiles/fixrep_rules.dir/consistency.cc.o" "gcc" "src/rules/CMakeFiles/fixrep_rules.dir/consistency.cc.o.d"
  "/root/repo/src/rules/fixing_rule.cc" "src/rules/CMakeFiles/fixrep_rules.dir/fixing_rule.cc.o" "gcc" "src/rules/CMakeFiles/fixrep_rules.dir/fixing_rule.cc.o.d"
  "/root/repo/src/rules/implication.cc" "src/rules/CMakeFiles/fixrep_rules.dir/implication.cc.o" "gcc" "src/rules/CMakeFiles/fixrep_rules.dir/implication.cc.o.d"
  "/root/repo/src/rules/minimize.cc" "src/rules/CMakeFiles/fixrep_rules.dir/minimize.cc.o" "gcc" "src/rules/CMakeFiles/fixrep_rules.dir/minimize.cc.o.d"
  "/root/repo/src/rules/profile.cc" "src/rules/CMakeFiles/fixrep_rules.dir/profile.cc.o" "gcc" "src/rules/CMakeFiles/fixrep_rules.dir/profile.cc.o.d"
  "/root/repo/src/rules/resolution.cc" "src/rules/CMakeFiles/fixrep_rules.dir/resolution.cc.o" "gcc" "src/rules/CMakeFiles/fixrep_rules.dir/resolution.cc.o.d"
  "/root/repo/src/rules/rule_io.cc" "src/rules/CMakeFiles/fixrep_rules.dir/rule_io.cc.o" "gcc" "src/rules/CMakeFiles/fixrep_rules.dir/rule_io.cc.o.d"
  "/root/repo/src/rules/rule_set.cc" "src/rules/CMakeFiles/fixrep_rules.dir/rule_set.cc.o" "gcc" "src/rules/CMakeFiles/fixrep_rules.dir/rule_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relation/CMakeFiles/fixrep_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fixrep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
