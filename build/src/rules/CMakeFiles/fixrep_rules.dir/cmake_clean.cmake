file(REMOVE_RECURSE
  "CMakeFiles/fixrep_rules.dir/consistency.cc.o"
  "CMakeFiles/fixrep_rules.dir/consistency.cc.o.d"
  "CMakeFiles/fixrep_rules.dir/fixing_rule.cc.o"
  "CMakeFiles/fixrep_rules.dir/fixing_rule.cc.o.d"
  "CMakeFiles/fixrep_rules.dir/implication.cc.o"
  "CMakeFiles/fixrep_rules.dir/implication.cc.o.d"
  "CMakeFiles/fixrep_rules.dir/minimize.cc.o"
  "CMakeFiles/fixrep_rules.dir/minimize.cc.o.d"
  "CMakeFiles/fixrep_rules.dir/profile.cc.o"
  "CMakeFiles/fixrep_rules.dir/profile.cc.o.d"
  "CMakeFiles/fixrep_rules.dir/resolution.cc.o"
  "CMakeFiles/fixrep_rules.dir/resolution.cc.o.d"
  "CMakeFiles/fixrep_rules.dir/rule_io.cc.o"
  "CMakeFiles/fixrep_rules.dir/rule_io.cc.o.d"
  "CMakeFiles/fixrep_rules.dir/rule_set.cc.o"
  "CMakeFiles/fixrep_rules.dir/rule_set.cc.o.d"
  "libfixrep_rules.a"
  "libfixrep_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixrep_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
