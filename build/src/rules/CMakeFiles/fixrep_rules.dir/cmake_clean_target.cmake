file(REMOVE_RECURSE
  "libfixrep_rules.a"
)
