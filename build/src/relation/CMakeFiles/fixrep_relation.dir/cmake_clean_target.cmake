file(REMOVE_RECURSE
  "libfixrep_relation.a"
)
