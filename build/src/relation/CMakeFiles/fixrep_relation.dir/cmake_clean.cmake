file(REMOVE_RECURSE
  "CMakeFiles/fixrep_relation.dir/active_domain.cc.o"
  "CMakeFiles/fixrep_relation.dir/active_domain.cc.o.d"
  "CMakeFiles/fixrep_relation.dir/csv.cc.o"
  "CMakeFiles/fixrep_relation.dir/csv.cc.o.d"
  "CMakeFiles/fixrep_relation.dir/schema.cc.o"
  "CMakeFiles/fixrep_relation.dir/schema.cc.o.d"
  "CMakeFiles/fixrep_relation.dir/table.cc.o"
  "CMakeFiles/fixrep_relation.dir/table.cc.o.d"
  "CMakeFiles/fixrep_relation.dir/value_pool.cc.o"
  "CMakeFiles/fixrep_relation.dir/value_pool.cc.o.d"
  "libfixrep_relation.a"
  "libfixrep_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixrep_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
