# Empty compiler generated dependencies file for fixrep_relation.
# This may be replaced when dependencies are built.
