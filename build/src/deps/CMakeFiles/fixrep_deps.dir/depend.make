# Empty dependencies file for fixrep_deps.
# This may be replaced when dependencies are built.
