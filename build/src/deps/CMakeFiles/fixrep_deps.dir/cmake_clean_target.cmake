file(REMOVE_RECURSE
  "libfixrep_deps.a"
)
