file(REMOVE_RECURSE
  "CMakeFiles/fixrep_deps.dir/cfd.cc.o"
  "CMakeFiles/fixrep_deps.dir/cfd.cc.o.d"
  "CMakeFiles/fixrep_deps.dir/fd.cc.o"
  "CMakeFiles/fixrep_deps.dir/fd.cc.o.d"
  "CMakeFiles/fixrep_deps.dir/violation.cc.o"
  "CMakeFiles/fixrep_deps.dir/violation.cc.o.d"
  "libfixrep_deps.a"
  "libfixrep_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixrep_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
