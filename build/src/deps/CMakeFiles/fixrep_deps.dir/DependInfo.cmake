
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deps/cfd.cc" "src/deps/CMakeFiles/fixrep_deps.dir/cfd.cc.o" "gcc" "src/deps/CMakeFiles/fixrep_deps.dir/cfd.cc.o.d"
  "/root/repo/src/deps/fd.cc" "src/deps/CMakeFiles/fixrep_deps.dir/fd.cc.o" "gcc" "src/deps/CMakeFiles/fixrep_deps.dir/fd.cc.o.d"
  "/root/repo/src/deps/violation.cc" "src/deps/CMakeFiles/fixrep_deps.dir/violation.cc.o" "gcc" "src/deps/CMakeFiles/fixrep_deps.dir/violation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relation/CMakeFiles/fixrep_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fixrep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
