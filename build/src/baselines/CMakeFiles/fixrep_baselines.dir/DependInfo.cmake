
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/csm.cc" "src/baselines/CMakeFiles/fixrep_baselines.dir/csm.cc.o" "gcc" "src/baselines/CMakeFiles/fixrep_baselines.dir/csm.cc.o.d"
  "/root/repo/src/baselines/editing.cc" "src/baselines/CMakeFiles/fixrep_baselines.dir/editing.cc.o" "gcc" "src/baselines/CMakeFiles/fixrep_baselines.dir/editing.cc.o.d"
  "/root/repo/src/baselines/editing_master.cc" "src/baselines/CMakeFiles/fixrep_baselines.dir/editing_master.cc.o" "gcc" "src/baselines/CMakeFiles/fixrep_baselines.dir/editing_master.cc.o.d"
  "/root/repo/src/baselines/heu.cc" "src/baselines/CMakeFiles/fixrep_baselines.dir/heu.cc.o" "gcc" "src/baselines/CMakeFiles/fixrep_baselines.dir/heu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deps/CMakeFiles/fixrep_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/fixrep_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/fixrep_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fixrep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
