file(REMOVE_RECURSE
  "CMakeFiles/fixrep_baselines.dir/csm.cc.o"
  "CMakeFiles/fixrep_baselines.dir/csm.cc.o.d"
  "CMakeFiles/fixrep_baselines.dir/editing.cc.o"
  "CMakeFiles/fixrep_baselines.dir/editing.cc.o.d"
  "CMakeFiles/fixrep_baselines.dir/editing_master.cc.o"
  "CMakeFiles/fixrep_baselines.dir/editing_master.cc.o.d"
  "CMakeFiles/fixrep_baselines.dir/heu.cc.o"
  "CMakeFiles/fixrep_baselines.dir/heu.cc.o.d"
  "libfixrep_baselines.a"
  "libfixrep_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixrep_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
