# Empty dependencies file for fixrep_baselines.
# This may be replaced when dependencies are built.
