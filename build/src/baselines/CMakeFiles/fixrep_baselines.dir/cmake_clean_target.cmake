file(REMOVE_RECURSE
  "libfixrep_baselines.a"
)
