file(REMOVE_RECURSE
  "CMakeFiles/fixrep_repair.dir/crepair.cc.o"
  "CMakeFiles/fixrep_repair.dir/crepair.cc.o.d"
  "CMakeFiles/fixrep_repair.dir/incremental.cc.o"
  "CMakeFiles/fixrep_repair.dir/incremental.cc.o.d"
  "CMakeFiles/fixrep_repair.dir/lrepair.cc.o"
  "CMakeFiles/fixrep_repair.dir/lrepair.cc.o.d"
  "CMakeFiles/fixrep_repair.dir/parallel.cc.o"
  "CMakeFiles/fixrep_repair.dir/parallel.cc.o.d"
  "CMakeFiles/fixrep_repair.dir/provenance.cc.o"
  "CMakeFiles/fixrep_repair.dir/provenance.cc.o.d"
  "libfixrep_repair.a"
  "libfixrep_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixrep_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
