file(REMOVE_RECURSE
  "libfixrep_repair.a"
)
