
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repair/crepair.cc" "src/repair/CMakeFiles/fixrep_repair.dir/crepair.cc.o" "gcc" "src/repair/CMakeFiles/fixrep_repair.dir/crepair.cc.o.d"
  "/root/repo/src/repair/incremental.cc" "src/repair/CMakeFiles/fixrep_repair.dir/incremental.cc.o" "gcc" "src/repair/CMakeFiles/fixrep_repair.dir/incremental.cc.o.d"
  "/root/repo/src/repair/lrepair.cc" "src/repair/CMakeFiles/fixrep_repair.dir/lrepair.cc.o" "gcc" "src/repair/CMakeFiles/fixrep_repair.dir/lrepair.cc.o.d"
  "/root/repo/src/repair/parallel.cc" "src/repair/CMakeFiles/fixrep_repair.dir/parallel.cc.o" "gcc" "src/repair/CMakeFiles/fixrep_repair.dir/parallel.cc.o.d"
  "/root/repo/src/repair/provenance.cc" "src/repair/CMakeFiles/fixrep_repair.dir/provenance.cc.o" "gcc" "src/repair/CMakeFiles/fixrep_repair.dir/provenance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rules/CMakeFiles/fixrep_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/fixrep_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fixrep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
