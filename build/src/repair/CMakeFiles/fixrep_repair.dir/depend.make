# Empty dependencies file for fixrep_repair.
# This may be replaced when dependencies are built.
