
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rulegen/discovery.cc" "src/rulegen/CMakeFiles/fixrep_rulegen.dir/discovery.cc.o" "gcc" "src/rulegen/CMakeFiles/fixrep_rulegen.dir/discovery.cc.o.d"
  "/root/repo/src/rulegen/from_cfds.cc" "src/rulegen/CMakeFiles/fixrep_rulegen.dir/from_cfds.cc.o" "gcc" "src/rulegen/CMakeFiles/fixrep_rulegen.dir/from_cfds.cc.o.d"
  "/root/repo/src/rulegen/from_examples.cc" "src/rulegen/CMakeFiles/fixrep_rulegen.dir/from_examples.cc.o" "gcc" "src/rulegen/CMakeFiles/fixrep_rulegen.dir/from_examples.cc.o.d"
  "/root/repo/src/rulegen/rulegen.cc" "src/rulegen/CMakeFiles/fixrep_rulegen.dir/rulegen.cc.o" "gcc" "src/rulegen/CMakeFiles/fixrep_rulegen.dir/rulegen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rules/CMakeFiles/fixrep_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/fixrep_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/fixrep_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fixrep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
