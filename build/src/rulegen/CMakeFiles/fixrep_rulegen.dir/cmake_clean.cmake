file(REMOVE_RECURSE
  "CMakeFiles/fixrep_rulegen.dir/discovery.cc.o"
  "CMakeFiles/fixrep_rulegen.dir/discovery.cc.o.d"
  "CMakeFiles/fixrep_rulegen.dir/from_cfds.cc.o"
  "CMakeFiles/fixrep_rulegen.dir/from_cfds.cc.o.d"
  "CMakeFiles/fixrep_rulegen.dir/from_examples.cc.o"
  "CMakeFiles/fixrep_rulegen.dir/from_examples.cc.o.d"
  "CMakeFiles/fixrep_rulegen.dir/rulegen.cc.o"
  "CMakeFiles/fixrep_rulegen.dir/rulegen.cc.o.d"
  "libfixrep_rulegen.a"
  "libfixrep_rulegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixrep_rulegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
