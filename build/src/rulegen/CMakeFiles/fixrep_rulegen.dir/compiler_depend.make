# Empty compiler generated dependencies file for fixrep_rulegen.
# This may be replaced when dependencies are built.
