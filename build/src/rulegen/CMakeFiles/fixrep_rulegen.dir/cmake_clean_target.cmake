file(REMOVE_RECURSE
  "libfixrep_rulegen.a"
)
