file(REMOVE_RECURSE
  "libfixrep_common.a"
)
