file(REMOVE_RECURSE
  "CMakeFiles/fixrep_common.dir/random.cc.o"
  "CMakeFiles/fixrep_common.dir/random.cc.o.d"
  "CMakeFiles/fixrep_common.dir/string_util.cc.o"
  "CMakeFiles/fixrep_common.dir/string_util.cc.o.d"
  "libfixrep_common.a"
  "libfixrep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixrep_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
