# Empty dependencies file for fixrep_common.
# This may be replaced when dependencies are built.
