file(REMOVE_RECURSE
  "CMakeFiles/fixrep_datagen.dir/hosp.cc.o"
  "CMakeFiles/fixrep_datagen.dir/hosp.cc.o.d"
  "CMakeFiles/fixrep_datagen.dir/noise.cc.o"
  "CMakeFiles/fixrep_datagen.dir/noise.cc.o.d"
  "CMakeFiles/fixrep_datagen.dir/travel.cc.o"
  "CMakeFiles/fixrep_datagen.dir/travel.cc.o.d"
  "CMakeFiles/fixrep_datagen.dir/uis.cc.o"
  "CMakeFiles/fixrep_datagen.dir/uis.cc.o.d"
  "libfixrep_datagen.a"
  "libfixrep_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixrep_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
