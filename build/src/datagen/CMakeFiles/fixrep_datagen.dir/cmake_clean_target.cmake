file(REMOVE_RECURSE
  "libfixrep_datagen.a"
)
