
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/hosp.cc" "src/datagen/CMakeFiles/fixrep_datagen.dir/hosp.cc.o" "gcc" "src/datagen/CMakeFiles/fixrep_datagen.dir/hosp.cc.o.d"
  "/root/repo/src/datagen/noise.cc" "src/datagen/CMakeFiles/fixrep_datagen.dir/noise.cc.o" "gcc" "src/datagen/CMakeFiles/fixrep_datagen.dir/noise.cc.o.d"
  "/root/repo/src/datagen/travel.cc" "src/datagen/CMakeFiles/fixrep_datagen.dir/travel.cc.o" "gcc" "src/datagen/CMakeFiles/fixrep_datagen.dir/travel.cc.o.d"
  "/root/repo/src/datagen/uis.cc" "src/datagen/CMakeFiles/fixrep_datagen.dir/uis.cc.o" "gcc" "src/datagen/CMakeFiles/fixrep_datagen.dir/uis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deps/CMakeFiles/fixrep_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/fixrep_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/fixrep_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fixrep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
