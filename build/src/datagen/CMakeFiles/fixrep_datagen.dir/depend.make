# Empty dependencies file for fixrep_datagen.
# This may be replaced when dependencies are built.
