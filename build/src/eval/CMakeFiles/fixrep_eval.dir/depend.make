# Empty dependencies file for fixrep_eval.
# This may be replaced when dependencies are built.
