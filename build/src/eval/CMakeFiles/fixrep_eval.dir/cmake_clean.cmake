file(REMOVE_RECURSE
  "CMakeFiles/fixrep_eval.dir/experiment.cc.o"
  "CMakeFiles/fixrep_eval.dir/experiment.cc.o.d"
  "CMakeFiles/fixrep_eval.dir/metrics.cc.o"
  "CMakeFiles/fixrep_eval.dir/metrics.cc.o.d"
  "CMakeFiles/fixrep_eval.dir/text_table.cc.o"
  "CMakeFiles/fixrep_eval.dir/text_table.cc.o.d"
  "libfixrep_eval.a"
  "libfixrep_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixrep_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
