
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/fixrep_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/fixrep_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/fixrep_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/fixrep_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/text_table.cc" "src/eval/CMakeFiles/fixrep_eval.dir/text_table.cc.o" "gcc" "src/eval/CMakeFiles/fixrep_eval.dir/text_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relation/CMakeFiles/fixrep_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fixrep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
