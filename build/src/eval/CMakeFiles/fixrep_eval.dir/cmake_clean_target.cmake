file(REMOVE_RECURSE
  "libfixrep_eval.a"
)
